package table

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/core"
)

// The randomized table-level oracle: random mixed numeric/string tables
// and random And/Or/AndNot trees, asserting that a Prepared statement
// (re-bound twice with different parameter sets) ≡ the ad-hoc Query
// path ≡ a naive full-scan evaluation — before and after Append,
// Update, UpdateString, Delete, Compact and Maintain between
// executions.

// oracleMirror is the test's own copy of the table contents, refreshed
// from the table before each naive evaluation.
type oracleMirror struct {
	a, z []int64
	f    []float64
	u    []uint8
	s    []string
}

func refreshMirror(t *testing.T, tb *Table) *oracleMirror {
	t.Helper()
	m := &oracleMirror{}
	var err error
	if m.a, err = Column[int64](tb, "a"); err != nil {
		t.Fatal(err)
	}
	if m.z, err = Column[int64](tb, "z"); err != nil {
		t.Fatal(err)
	}
	if m.f, err = Column[float64](tb, "f"); err != nil {
		t.Fatal(err)
	}
	if m.u, err = Column[uint8](tb, "u"); err != nil {
		t.Fatal(err)
	}
	if m.s, err = tb.StringColumn("s"); err != nil {
		t.Fatal(err)
	}
	return m
}

// oracleNode is one generated predicate node. Parameterized leaves vary
// their values between binding 0 and binding 1; static leaves and inner
// nodes behave identically under both.
type oracleNode struct {
	lit   [2]Predicate      // literal predicate per binding
	par   Predicate         // the same node with placeholders
	binds [2]map[string]any // placeholder values per binding
	naive [2]func(m *oracleMirror, id int) bool
}

func staticNode(p Predicate, nv func(m *oracleMirror, id int) bool) *oracleNode {
	return &oracleNode{
		lit:   [2]Predicate{p, p},
		par:   p,
		binds: [2]map[string]any{{}, {}},
		naive: [2]func(m *oracleMirror, id int) bool{nv, nv},
	}
}

type oracleGen struct {
	rng    *rand.Rand
	m      *oracleMirror // generation-time snapshot, for plausible bounds
	nextID int           // unique parameter names
}

func (g *oracleGen) pname() string {
	g.nextID++
	return fmt.Sprintf("p%d", g.nextID)
}

// leafInt64 builds a leaf over an int64 column ("a" or "z"),
// parameterized with probability 1/2.
func (g *oracleGen) leafInt64(col string, vals []int64) *oracleNode {
	pick := func() int64 { return vals[g.rng.IntN(len(vals))] + int64(g.rng.IntN(41)) - 20 }
	switch g.rng.IntN(5) {
	case 0: // range
		mk := func(lo, hi int64) (Predicate, func(m *oracleMirror, id int) bool) {
			vcol := func(m *oracleMirror) []int64 {
				if col == "a" {
					return m.a
				}
				return m.z
			}
			return Range(col, lo, hi), func(m *oracleMirror, id int) bool {
				v := vcol(m)[id]
				return v >= lo && v < hi
			}
		}
		lo0, hi0 := ordered(pick(), pick())
		lo1, hi1 := ordered(pick(), pick())
		if g.rng.IntN(2) == 0 {
			p0, n0 := mk(lo0, hi0)
			return staticNode(p0, n0)
		}
		pn1, pn2 := g.pname(), g.pname()
		p0, n0 := mk(lo0, hi0)
		p1, n1 := mk(lo1, hi1)
		return &oracleNode{
			lit:   [2]Predicate{p0, p1},
			par:   RangeP(col, Param[int64](pn1), Param[int64](pn2)),
			binds: [2]map[string]any{{pn1: lo0, pn2: hi0}, {pn1: lo1, pn2: hi1}},
			naive: [2]func(m *oracleMirror, id int) bool{n0, n1},
		}
	case 1: // atLeast
		return g.scalarInt64(col, kindAtLeast, pick,
			func(lo int64) Predicate { return AtLeast(col, lo) },
			func(v, lo int64) bool { return v >= lo })
	case 2: // lessThan
		return g.scalarInt64(col, kindLessThan, pick,
			func(hi int64) Predicate { return LessThan(col, hi) },
			func(v, hi int64) bool { return v < hi })
	case 3: // equals
		eq := func() int64 { return vals[g.rng.IntN(len(vals))] }
		return g.scalarInt64(col, kindEquals, eq,
			func(x int64) Predicate { return Equals(col, x) },
			func(v, x int64) bool { return v == x })
	default: // in
		mkSet := func() []int64 {
			set := make([]int64, 1+g.rng.IntN(4))
			for i := range set {
				set[i] = vals[g.rng.IntN(len(vals))] + int64(g.rng.IntN(3)) - 1
			}
			return set
		}
		s0, s1 := mkSet(), mkSet()
		nv := func(set []int64) func(m *oracleMirror, id int) bool {
			return func(m *oracleMirror, id int) bool {
				v := m.a
				if col == "z" {
					v = m.z
				}
				for _, x := range set {
					if v[id] == x {
						return true
					}
				}
				return false
			}
		}
		if g.rng.IntN(2) == 0 {
			return staticNode(In(col, s0...), nv(s0))
		}
		pn := g.pname()
		return &oracleNode{
			lit:   [2]Predicate{In(col, s0...), In(col, s1...)},
			par:   InP(col, Param[int64](pn)),
			binds: [2]map[string]any{{pn: s0}, {pn: s1}},
			naive: [2]func(m *oracleMirror, id int) bool{nv(s0), nv(s1)},
		}
	}
}

// scalarInt64 generalizes the single-bound int64 kinds: half the draws
// stay static (sometimes through the literal Val path of the P
// constructors), the other half parameterize the bound.
func (g *oracleGen) scalarInt64(col string, kind leafKind, pick func() int64,
	mkLit func(int64) Predicate, cmp func(v, b int64) bool) *oracleNode {
	nv := func(b int64) func(m *oracleMirror, id int) bool {
		return func(m *oracleMirror, id int) bool {
			v := m.a
			if col == "z" {
				v = m.z
			}
			return cmp(v[id], b)
		}
	}
	b0, b1 := pick(), pick()
	if g.rng.IntN(2) == 0 {
		if g.rng.IntN(2) == 0 {
			// The literal-Bound (Val) path of the P constructors.
			switch kind {
			case kindAtLeast:
				return staticNode(AtLeastP(col, Val(b0)), nv(b0))
			case kindLessThan:
				return staticNode(LessThanP(col, Val(b0)), nv(b0))
			case kindEquals:
				return staticNode(EqualsP(col, Val(b0)), nv(b0))
			}
		}
		return staticNode(mkLit(b0), nv(b0))
	}
	pn := g.pname()
	var par Predicate
	switch kind {
	case kindAtLeast:
		par = AtLeastP(col, Param[int64](pn))
	case kindLessThan:
		par = LessThanP(col, Param[int64](pn))
	default:
		par = EqualsP(col, Param[int64](pn))
	}
	return &oracleNode{
		lit:   [2]Predicate{mkLit(b0), mkLit(b1)},
		par:   par,
		binds: [2]map[string]any{{pn: b0}, {pn: b1}},
		naive: [2]func(m *oracleMirror, id int) bool{nv(b0), nv(b1)},
	}
}

func (g *oracleGen) leafFloat(vals []float64) *oracleNode {
	pick := func() float64 { return vals[g.rng.IntN(len(vals))] + g.rng.Float64()*10 - 5 }
	lo0, hi0 := orderedF(pick(), pick())
	lo1, hi1 := orderedF(pick(), pick())
	nv := func(lo, hi float64) func(m *oracleMirror, id int) bool {
		return func(m *oracleMirror, id int) bool { v := m.f[id]; return v >= lo && v < hi }
	}
	if g.rng.IntN(2) == 0 {
		return staticNode(Range("f", lo0, hi0), nv(lo0, hi0))
	}
	pn1, pn2 := g.pname(), g.pname()
	return &oracleNode{
		lit:   [2]Predicate{Range("f", lo0, hi0), Range("f", lo1, hi1)},
		par:   RangeP("f", Param[float64](pn1), Param[float64](pn2)),
		binds: [2]map[string]any{{pn1: lo0, pn2: hi0}, {pn1: lo1, pn2: hi1}},
		naive: [2]func(m *oracleMirror, id int) bool{nv(lo0, hi0), nv(lo1, hi1)},
	}
}

func (g *oracleGen) leafUint8() *oracleNode {
	b0, b1 := uint8(g.rng.IntN(8)), uint8(g.rng.IntN(8))
	nv := func(b uint8) func(m *oracleMirror, id int) bool {
		return func(m *oracleMirror, id int) bool { return m.u[id] == b }
	}
	if g.rng.IntN(2) == 0 {
		return staticNode(Equals("u", b0), nv(b0))
	}
	pn := g.pname()
	return &oracleNode{
		lit:   [2]Predicate{Equals("u", b0), Equals("u", b1)},
		par:   EqualsP("u", Param[uint8](pn)),
		binds: [2]map[string]any{{pn: b0}, {pn: b1}},
		naive: [2]func(m *oracleMirror, id int) bool{nv(b0), nv(b1)},
	}
}

func (g *oracleGen) leafString(vals []string) *oracleNode {
	pick := func() string { return vals[g.rng.IntN(len(vals))] }
	switch g.rng.IntN(4) {
	case 0: // inclusive range
		lo0, hi0 := orderedS(pick(), pick())
		lo1, hi1 := orderedS(pick(), pick())
		nv := func(lo, hi string) func(m *oracleMirror, id int) bool {
			return func(m *oracleMirror, id int) bool { v := m.s[id]; return v >= lo && v <= hi }
		}
		if g.rng.IntN(2) == 0 {
			return staticNode(StrRange("s", lo0, hi0), nv(lo0, hi0))
		}
		pn1, pn2 := g.pname(), g.pname()
		return &oracleNode{
			lit:   [2]Predicate{StrRange("s", lo0, hi0), StrRange("s", lo1, hi1)},
			par:   RangeP("s", StrParam(pn1), StrParam(pn2)),
			binds: [2]map[string]any{{pn1: lo0, pn2: hi0}, {pn1: lo1, pn2: hi1}},
			naive: [2]func(m *oracleMirror, id int) bool{nv(lo0, hi0), nv(lo1, hi1)},
		}
	case 1: // equals (sometimes a string absent from the column)
		mk := func() string {
			if g.rng.IntN(4) == 0 {
				return "zzz-absent"
			}
			return pick()
		}
		e0, e1 := mk(), mk()
		nv := func(e string) func(m *oracleMirror, id int) bool {
			return func(m *oracleMirror, id int) bool { return m.s[id] == e }
		}
		if g.rng.IntN(2) == 0 {
			return staticNode(StrEquals("s", e0), nv(e0))
		}
		pn := g.pname()
		return &oracleNode{
			lit:   [2]Predicate{StrEquals("s", e0), StrEquals("s", e1)},
			par:   EqualsP("s", StrParam(pn)),
			binds: [2]map[string]any{{pn: e0}, {pn: e1}},
			naive: [2]func(m *oracleMirror, id int) bool{nv(e0), nv(e1)},
		}
	case 2: // prefix
		mk := func() string {
			s := pick()
			return s[:1+g.rng.IntN(len(s))]
		}
		p0, p1 := mk(), mk()
		nv := func(p string) func(m *oracleMirror, id int) bool {
			return func(m *oracleMirror, id int) bool { return strings.HasPrefix(m.s[id], p) }
		}
		if g.rng.IntN(2) == 0 {
			return staticNode(StrPrefix("s", p0), nv(p0))
		}
		pn := g.pname()
		return &oracleNode{
			lit:   [2]Predicate{StrPrefix("s", p0), StrPrefix("s", p1)},
			par:   PrefixP("s", StrParam(pn)),
			binds: [2]map[string]any{{pn: p0}, {pn: p1}},
			naive: [2]func(m *oracleMirror, id int) bool{nv(p0), nv(p1)},
		}
	default: // in
		mkSet := func() []string {
			set := make([]string, 1+g.rng.IntN(3))
			for i := range set {
				set[i] = pick()
			}
			return set
		}
		s0, s1 := mkSet(), mkSet()
		nv := func(set []string) func(m *oracleMirror, id int) bool {
			return func(m *oracleMirror, id int) bool {
				for _, x := range set {
					if m.s[id] == x {
						return true
					}
				}
				return false
			}
		}
		if g.rng.IntN(2) == 0 {
			return staticNode(StrIn("s", s0...), nv(s0))
		}
		pn := g.pname()
		return &oracleNode{
			lit:   [2]Predicate{StrIn("s", s0...), StrIn("s", s1...)},
			par:   InP("s", StrParam(pn)),
			binds: [2]map[string]any{{pn: s0}, {pn: s1}},
			naive: [2]func(m *oracleMirror, id int) bool{nv(s0), nv(s1)},
		}
	}
}

func (g *oracleGen) leaf() *oracleNode {
	switch g.rng.IntN(5) {
	case 0:
		return g.leafInt64("a", g.m.a)
	case 1:
		return g.leafInt64("z", g.m.z)
	case 2:
		return g.leafFloat(g.m.f)
	case 3:
		return g.leafUint8()
	default:
		return g.leafString(g.m.s)
	}
}

// tree builds a random predicate tree of the given depth.
func (g *oracleGen) tree(depth int) *oracleNode {
	if depth <= 0 || g.rng.IntN(3) == 0 {
		return g.leaf()
	}
	n := 2 + g.rng.IntN(2)
	kids := make([]*oracleNode, n)
	for i := range kids {
		kids[i] = g.tree(depth - 1)
	}
	combine := func(mk func(ps ...Predicate) Predicate, fold func(vals []bool) bool) *oracleNode {
		out := &oracleNode{}
		for b := 0; b < 2; b++ {
			lits := make([]Predicate, n)
			pars := make([]Predicate, n)
			binds := map[string]any{}
			for i, k := range kids {
				lits[i] = k.lit[b]
				pars[i] = k.par
				for name, v := range k.binds[b] {
					binds[name] = v
				}
			}
			out.lit[b] = mk(lits...)
			if b == 0 {
				out.par = mk(pars...)
			}
			out.binds[b] = binds
			bb := b
			out.naive[b] = func(m *oracleMirror, id int) bool {
				vals := make([]bool, n)
				for i, k := range kids {
					vals[i] = k.naive[bb](m, id)
				}
				return fold(vals)
			}
		}
		return out
	}
	switch g.rng.IntN(3) {
	case 0:
		return combine(And, func(vals []bool) bool {
			for _, v := range vals {
				if !v {
					return false
				}
			}
			return true
		})
	case 1:
		return combine(Or, func(vals []bool) bool {
			for _, v := range vals {
				if v {
					return true
				}
			}
			return false
		})
	default:
		n = 2
		kids = kids[:2]
		return combine(func(ps ...Predicate) Predicate { return AndNot(ps[0], ps[1]) },
			func(vals []bool) bool { return vals[0] && !vals[1] })
	}
}

func mkOracleTable(t *testing.T, rng *rand.Rand, n int) *Table {
	t.Helper()
	a := make([]int64, n)
	z := make([]int64, n)
	f := make([]float64, n)
	u := make([]uint8, n)
	s := make([]string, n)
	v, w := int64(500), int64(0)
	for i := 0; i < n; i++ {
		v += int64(rng.IntN(21)) - 10
		w += int64(rng.IntN(4))
		a[i] = v
		z[i] = w
		f[i] = rng.Float64() * 200
		u[i] = uint8(rng.IntN(8))
		s[i] = cities[(i/37+rng.IntN(2))%len(cities)]
	}
	tb := New("oracle")
	if err := AddColumn(tb, "a", a, Imprints, core.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := AddColumn(tb, "z", z, Zonemap, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := AddColumn(tb, "f", f, Imprints, core.Options{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := AddColumn(tb, "u", u, NoIndex, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("s", s, Imprints, core.Options{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	return tb
}

// mutateOracleTable applies one randomized round of writers.
func mutateOracleTable(t *testing.T, rng *rand.Rand, tb *Table, round int) {
	t.Helper()
	switch round % 4 {
	case 0: // batch append
		k := 50 + rng.IntN(100)
		a := make([]int64, k)
		z := make([]int64, k)
		f := make([]float64, k)
		u := make([]uint8, k)
		s := make([]string, k)
		for i := range a {
			a[i] = 400 + int64(rng.IntN(300))
			z[i] = int64(rng.IntN(1000))
			f[i] = rng.Float64() * 200
			u[i] = uint8(rng.IntN(8))
			s[i] = cities[rng.IntN(len(cities))]
		}
		b := tb.NewBatch()
		if err := Append(b, "a", a); err != nil {
			t.Fatal(err)
		}
		if err := Append(b, "z", z); err != nil {
			t.Fatal(err)
		}
		if err := Append(b, "f", f); err != nil {
			t.Fatal(err)
		}
		if err := Append(b, "u", u); err != nil {
			t.Fatal(err)
		}
		if err := b.AppendStrings("s", s); err != nil {
			t.Fatal(err)
		}
		if err := b.Commit(); err != nil {
			t.Fatal(err)
		}
	case 1: // in-place updates, incl. a novel string (dictionary re-encode)
		rows := tb.Rows()
		for i := 0; i < 20; i++ {
			id := rng.IntN(rows)
			if err := Update(tb, "a", id, 400+int64(rng.IntN(300))); err != nil {
				t.Fatal(err)
			}
		}
		if err := tb.UpdateString("s", rng.IntN(rows), cities[rng.IntN(len(cities))]); err != nil {
			t.Fatal(err)
		}
		if err := tb.UpdateString("s", rng.IntN(rows), fmt.Sprintf("novel-%d", round)); err != nil {
			t.Fatal(err)
		}
	case 2: // deletes
		rows := tb.Rows()
		for i := 0; i < 30; i++ {
			if err := tb.Delete(rng.IntN(rows)); err != nil {
				t.Fatal(err)
			}
		}
	default: // compact (drops deleted rows, renumbers) + maintenance
		tb.Compact()
		tb.Maintain(MaintainOptions{})
	}
}

func TestPreparedRandomizedOracle(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0x0a0c1e))
		tb := mkOracleTable(t, rng, 1500+rng.IntN(1500))
		opts := []SelectOptions{{}, {ScanThreshold: 2}, {ScanThreshold: 0.001}}[seed%3]

		for tree := 0; tree < 5; tree++ {
			g := &oracleGen{rng: rng, m: refreshMirror(t, tb)}
			node := g.tree(2)
			prep, err := tb.Prepare(node.par, opts)
			if err != nil {
				t.Fatalf("seed %d tree %d: Prepare: %v", seed, tree, err)
			}
			for round := 0; round < 4; round++ {
				m := refreshMirror(t, tb)
				for b := 0; b < 2; b++ {
					ctx := fmt.Sprintf("seed %d tree %d round %d binding %d", seed, tree, round, b)

					q := prep.Exec().Options(opts)
					for name, v := range node.binds[b] {
						q = q.Bind(name, v)
					}
					gotPrep, _, err := q.IDs()
					if err != nil {
						t.Fatalf("%s: prepared: %v", ctx, err)
					}
					gotAdhoc, stVec, err := tb.Select().Where(node.lit[b]).Options(opts).IDs()
					if err != nil {
						t.Fatalf("%s: adhoc: %v", ctx, err)
					}
					var want []uint32
					for id := 0; id < tb.Rows(); id++ {
						if tb.IsDeleted(id) {
							continue
						}
						if node.naive[b](m, id) {
							want = append(want, uint32(id))
						}
					}
					equalIDs(t, gotPrep, want, ctx+": prepared vs naive")
					equalIDs(t, gotAdhoc, want, ctx+": adhoc vs naive")

					// Scalar ≡ vectorized at several parallelism levels:
					// identical ids at each, and — since both walks count
					// one comparison per evaluated live lane — identical
					// statistics up to the kernel block counter (scratch
					// reuse depends on pool warmth, not the plan).
					for _, par := range []int{1, 2, 8} {
						so := opts
						so.Scalar = true
						so.Parallelism = par
						gotScalar, stSca, err := tb.Select().Where(node.lit[b]).Options(so).IDs()
						if err != nil {
							t.Fatalf("%s: scalar par=%d: %v", ctx, par, err)
						}
						equalIDs(t, gotScalar, want, fmt.Sprintf("%s: scalar par=%d vs naive", ctx, par))
						if stSca.BlocksVectorized != 0 {
							t.Errorf("%s: scalar par=%d run vectorized %d blocks", ctx, par, stSca.BlocksVectorized)
						}
						a, c := stVec, stSca
						a.BlocksVectorized, a.ScratchReused, c.ScratchReused = 0, 0, 0
						if a != c {
							t.Errorf("%s: scalar par=%d vs vectorized stats diverge\nvec %+v\nsca %+v", ctx, par, stVec, stSca)
						}
					}

					// Count agrees with the id list (exercising the
					// exact-run popcount shortcut under deletes).
					q2 := prep.Exec().Options(opts)
					for name, v := range node.binds[b] {
						q2 = q2.Bind(name, v)
					}
					n, _, err := q2.Count()
					if err != nil {
						t.Fatalf("%s: count: %v", ctx, err)
					}
					if n != uint64(len(want)) {
						t.Errorf("%s: Count = %d, want %d", ctx, n, len(want))
					}
				}
				mutateOracleTable(t, rng, tb, round+int(seed)+tree)
			}
		}
	}
}

func ordered(a, b int64) (int64, int64) {
	if a > b {
		return b, a
	}
	return a, b
}

func orderedF(a, b float64) (float64, float64) {
	if a > b {
		return b, a
	}
	return a, b
}

func orderedS(a, b string) (string, string) {
	if a > b {
		return b, a
	}
	return a, b
}
