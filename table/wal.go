package table

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"time"

	"repro/internal/faultfs"
	"repro/internal/wal"
)

// Crash-safe ingest (wal.go): with a write-ahead log attached, every
// committed batch, update, delete and compaction is framed into the
// per-table log (internal/wal) before it is acknowledged, under the
// same locks that order it in memory — so the log's record order is
// exactly the memory order. Column imprints never need to be logged:
// the index is a ~1-2% summary rebuilt cheaply from the value slabs,
// so recovery replays raw rows into the delta store and rebuilds
// indexes through the ordinary seal path. Checkpoints are piggybacked
// on image saves: WriteFile cuts the log while the drain holds the
// exclusive lock, persists the cut sequence inside the image, and
// truncates the covered segments once the image is durably renamed.
//
// Record formats (all little endian, one record per WAL frame):
//
//	'C' commit:   base uint64, nrows uint32, ncols uint16,
//	              ncols type tags, then per row per column one value
//	'U' update:   id uint64, col uint16, tag uint8, value
//	'D' delete:   id uint64
//	'P' compact:  preRows uint64, postRows uint64
//	'K' checkpoint: rows uint64 (the durable image's row count)
//
// Values are fixed width by tag; strings are uint32 length + bytes.
// Sharded tables keep one log per shard (dir/shard-NNN), written under
// that shard's commit token, so per-shard ordering is total and shards
// never serialize against each other on the log.

// WALOptions configures EnableWAL.
type WALOptions struct {
	// Dir is the log directory (per-shard subdirectories are created
	// under it for sharded tables).
	Dir string
	// Policy selects the durability/throughput trade-off: SyncAlways
	// fsyncs every commit, SyncGroup batches commits into one fsync per
	// GroupWindow, SyncOff never syncs (crash loses the tail).
	Policy wal.SyncPolicy
	// GroupWindow is the max added commit latency under SyncGroup.
	// 0 means the wal package default.
	GroupWindow time.Duration
	// SegmentBytes rolls the log to a new segment file past this size.
	// 0 means the wal package default.
	SegmentBytes int64
	// FS overrides the filesystem (fault injection in tests); nil means
	// the real one.
	FS faultfs.FS
}

// RecoveryReport summarizes one WAL replay at startup.
type RecoveryReport struct {
	// Segments and Records count what the log physically held.
	Segments int `json:"segments"`
	Records  int `json:"records"`
	// RowsReplayed is the number of committed rows re-applied to the
	// delta store; RowsSkipped were already covered by the loaded image
	// (or superseded by a checkpoint) and skipped idempotently.
	RowsReplayed int `json:"rows_replayed"`
	RowsSkipped  int `json:"rows_skipped"`
	// UpdatesReplayed / DeletesReplayed count re-applied point writes.
	UpdatesReplayed int `json:"updates_replayed"`
	DeletesReplayed int `json:"deletes_replayed"`
	// TornRecords and BytesTruncated report torn-tail repair: a partial
	// final record is physically truncated (once) and counted here.
	TornRecords    int   `json:"torn_records"`
	BytesTruncated int64 `json:"bytes_truncated"`
	// SegmentsRebuilt counts columnar segments sealed from replayed
	// rows — the indexes recovery rebuilt instead of logging them.
	SegmentsRebuilt int `json:"segments_rebuilt"`
}

func (r *RecoveryReport) add(o *RecoveryReport) {
	r.Segments += o.Segments
	r.Records += o.Records
	r.RowsReplayed += o.RowsReplayed
	r.RowsSkipped += o.RowsSkipped
	r.UpdatesReplayed += o.UpdatesReplayed
	r.DeletesReplayed += o.DeletesReplayed
	r.TornRecords += o.TornRecords
	r.BytesTruncated += o.BytesTruncated
	r.SegmentsRebuilt += o.SegmentsRebuilt
}

// String renders the report for startup logs.
func (r *RecoveryReport) String() string {
	return fmt.Sprintf("replayed %d record(s) from %d segment(s): %d row(s) recovered, %d skipped, %d update(s), %d delete(s), %d torn record(s) (%d bytes truncated), %d segment(s) rebuilt",
		r.Records, r.Segments, r.RowsReplayed, r.RowsSkipped,
		r.UpdatesReplayed, r.DeletesReplayed, r.TornRecords, r.BytesTruncated, r.SegmentsRebuilt)
}

// EnableWAL attaches a write-ahead log to a delta-ingest table: it
// first replays any existing log in opts.Dir (tolerating a torn final
// record), seals the replayed rows so their indexes are rebuilt, and
// then starts logging every commit, update, delete and compaction.
// Call it after EnableDeltaIngest and after loading any persisted
// image, before serving writes. Enabling is one-way; Close flushes and
// closes the log.
func (t *Table) EnableWAL(opts WALOptions) (*RecoveryReport, error) {
	if t.shard != nil {
		return t.shardEnableWAL(opts)
	}
	return t.enableWALKid(opts, opts.Dir)
}

func (t *Table) shardEnableWAL(opts WALOptions) (*RecoveryReport, error) {
	sh := t.shard
	if !sh.ingest {
		return nil, fmt.Errorf("table %s: WAL requires delta ingest (call EnableDeltaIngest first)", t.name)
	}
	total := &RecoveryReport{}
	for c, kid := range sh.kids {
		rep, err := kid.enableWALKid(opts, shardWALDir(opts.Dir, c))
		if err != nil {
			return nil, fmt.Errorf("table %s shard %d: %w", t.name, c, err)
		}
		total.add(rep)
	}
	// Replay changed kid row counts; refresh the routing counters.
	t.mu.Lock()
	t.fsys = opts.FS
	t.mu.Unlock()
	sh.lockTokens()
	sh.refreshRowsLocked()
	sh.unlockTokens()
	return total, nil
}

// shardWALDir names one shard's log directory.
func shardWALDir(dir string, c int) string { return fmt.Sprintf("%s/shard-%03d", dir, c) }

// enableWALKid replays and attaches one (unsharded) table's log.
func (t *Table) enableWALKid(opts WALOptions, dir string) (*RecoveryReport, error) {
	d := t.deltaPtr()
	if d == nil {
		return nil, fmt.Errorf("table %s: WAL requires delta ingest (call EnableDeltaIngest first)", t.name)
	}
	if t.walPtr() != nil {
		return nil, fmt.Errorf("table %s: WAL already enabled", t.name)
	}
	tags, err := t.walSchemaTags()
	if err != nil {
		return nil, err
	}
	rep := &RecoveryReport{}
	stats, err := wal.Replay(opts.FS, dir, func(seq uint64, payload []byte) error {
		if seq < t.walKeepSeq {
			// Superseded by the checkpoint the loaded image recorded:
			// these records describe an epoch the image already covers
			// (possibly with since-renumbered row ids). Skip wholesale.
			if payload[0] == walRecCommit {
				if _, rows, err := decodeWALCommit(payload, tags); err == nil {
					rep.RowsSkipped += len(rows)
				}
			}
			return nil
		}
		return t.applyWALRecord(d, payload, tags, rep)
	})
	rep.Segments, rep.Records = stats.Segments, stats.Records
	rep.TornRecords, rep.BytesTruncated = stats.TornRecords, stats.BytesTruncated
	if err != nil {
		return nil, fmt.Errorf("table %s: wal replay: %w", t.name, err)
	}
	// Rebuild indexes for the recovered rows through the ordinary seal
	// path (imprints are never logged; they are cheaper to rebuild).
	if rep.RowsReplayed > 0 {
		before := t.Segments()
		t.SealDelta()
		rep.SegmentsRebuilt = t.Segments() - before
	}
	lg, err := wal.Open(dir, wal.Options{
		Policy:       opts.Policy,
		GroupWindow:  opts.GroupWindow,
		SegmentBytes: opts.SegmentBytes,
		FS:           opts.FS,
	})
	if err != nil {
		return nil, fmt.Errorf("table %s: wal open: %w", t.name, err)
	}
	t.mu.Lock()
	d.wal = lg
	d.walTags = tags
	d.recovery = rep
	t.fsys = opts.FS
	t.mu.Unlock()
	return rep, nil
}

// walPtr reads the attached log under the read lock (assigned once,
// under the write lock).
func (t *Table) walPtr() *wal.Log {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.delta == nil {
		return nil
	}
	return t.delta.wal
}

// walAppendLocked frames payload into the attached log, serialized
// with delta-store appends so log order equals memory order. It
// returns the log to wait durability on (nil when no WAL is attached).
// Callers hold at least the table read lock.
//
//imprintvet:locks held=mu.R
func (t *Table) walAppendLocked(d *deltaState, payload []byte) (*wal.Log, int64, error) {
	lg := d.wal
	if lg == nil {
		return nil, 0, nil
	}
	d.walMu.Lock()
	lsn, err := lg.Append(payload)
	d.walMu.Unlock()
	if err != nil {
		return nil, 0, fmt.Errorf("table %s: wal append: %w", t.name, err)
	}
	return lg, lsn, nil
}

// walSchemaTags derives the per-column WAL type tags from the current
// layout (commit records carry them, so replay can verify the schema).
func (t *Table) walSchemaTags() ([]byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	tags := make([]byte, len(t.order))
	for i, name := range t.order {
		tag, ok := walTagByType[t.cols[name].colType()]
		if !ok {
			return nil, fmt.Errorf("table %s: column %q type %q cannot be logged", t.name, name, t.cols[name].colType())
		}
		tags[i] = tag
	}
	return tags, nil
}

// ---- replay ----

// applyWALRecord re-applies one logged record during recovery (the WAL
// is not attached yet, so nothing re-logs). Replay is idempotent
// against the loaded image: commit rows at or below the current
// watermark are skipped, partial overlaps apply only the missing
// suffix, and a gap means the log and image do not belong together.
func (t *Table) applyWALRecord(d *deltaState, payload []byte, tags []byte, rep *RecoveryReport) error {
	if len(payload) == 0 {
		return fmt.Errorf("wal replay: empty record")
	}
	switch payload[0] {
	case walRecCommit:
		base, rows, err := decodeWALCommit(payload, tags)
		if err != nil {
			return err
		}
		cur := t.Rows()
		switch {
		case base+len(rows) <= cur:
			rep.RowsSkipped += len(rows)
			return nil
		case base > cur:
			return fmt.Errorf("wal replay: commit base %d leaves a gap after row %d", base, cur)
		}
		rep.RowsSkipped += cur - base
		suffix := rows[cur-base:]
		if err := d.store.Append(suffix); err != nil {
			return fmt.Errorf("wal replay: %w", err)
		}
		rep.RowsReplayed += len(suffix)
		return nil
	case walRecUpdate:
		id, ci, val, err := decodeWALUpdate(payload, tags)
		if err != nil {
			return err
		}
		if id >= t.Rows() {
			return fmt.Errorf("wal replay: update of row %d beyond table end %d", id, t.Rows())
		}
		if err := walApplyUpdate(t, t.orderName(ci), id, val); err != nil {
			return fmt.Errorf("wal replay: %w", err)
		}
		rep.UpdatesReplayed++
		return nil
	case walRecDelete:
		id, err := decodeWALDelete(payload)
		if err != nil {
			return err
		}
		if id >= t.Rows() {
			return fmt.Errorf("wal replay: delete of row %d beyond table end %d", id, t.Rows())
		}
		if err := t.Delete(id); err != nil {
			return fmt.Errorf("wal replay: %w", err)
		}
		rep.DeletesReplayed++
		return nil
	case walRecCompact:
		pre, post, err := decodeWALCompact(payload)
		if err != nil {
			return err
		}
		if cur := t.Rows(); cur != pre {
			return fmt.Errorf("wal replay: compaction expected %d rows, table has %d", pre, cur)
		}
		t.Compact()
		if cur := t.Rows(); cur != post {
			return fmt.Errorf("wal replay: compaction left %d rows, log says %d", cur, post)
		}
		return nil
	case walRecCheckpoint:
		ckRows, err := decodeWALCheckpoint(payload)
		if err != nil {
			return err
		}
		if cur := t.Rows(); ckRows > cur {
			return fmt.Errorf("wal replay: checkpoint covers %d rows but the loaded image has %d (stale image restored against a newer log)", ckRows, cur)
		}
		return nil
	}
	return fmt.Errorf("wal replay: unknown record type %q", payload[0])
}

// orderName returns the ci-th column name under a short read lock.
func (t *Table) orderName(ci int) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.order[ci]
}

// walApplyUpdate re-applies one decoded update by value type.
func walApplyUpdate(t *Table, name string, id int, val any) error {
	switch v := val.(type) {
	case int8:
		return Update(t, name, id, v)
	case int16:
		return Update(t, name, id, v)
	case int32:
		return Update(t, name, id, v)
	case int64:
		return Update(t, name, id, v)
	case uint8:
		return Update(t, name, id, v)
	case uint16:
		return Update(t, name, id, v)
	case uint32:
		return Update(t, name, id, v)
	case uint64:
		return Update(t, name, id, v)
	case float32:
		return Update(t, name, id, v)
	case float64:
		return Update(t, name, id, v)
	case string:
		return t.UpdateString(name, id, v)
	}
	return fmt.Errorf("update of unsupported type %T", val)
}

// ---- record codec ----

const (
	walRecCommit     = byte('C')
	walRecUpdate     = byte('U')
	walRecDelete     = byte('D')
	walRecCompact    = byte('P')
	walRecCheckpoint = byte('K')
)

const (
	walTagInt8 = byte(iota + 1)
	walTagInt16
	walTagInt32
	walTagInt64
	walTagUint8
	walTagUint16
	walTagUint32
	walTagUint64
	walTagFloat32
	walTagFloat64
	walTagString
)

var walTagByType = map[string]byte{
	"int8": walTagInt8, "int16": walTagInt16, "int32": walTagInt32, "int64": walTagInt64,
	"uint8": walTagUint8, "uint16": walTagUint16, "uint32": walTagUint32, "uint64": walTagUint64,
	"float32": walTagFloat32, "float64": walTagFloat64, "string": walTagString,
}

// walValueTag returns the tag for a boxed value (updates carry one).
func walValueTag(v any) (byte, bool) {
	switch v.(type) {
	case int8:
		return walTagInt8, true
	case int16:
		return walTagInt16, true
	case int32:
		return walTagInt32, true
	case int64:
		return walTagInt64, true
	case uint8:
		return walTagUint8, true
	case uint16:
		return walTagUint16, true
	case uint32:
		return walTagUint32, true
	case uint64:
		return walTagUint64, true
	case float32:
		return walTagFloat32, true
	case float64:
		return walTagFloat64, true
	case string:
		return walTagString, true
	}
	return 0, false
}

// appendWALValue encodes one boxed value; the tag must match walValueTag.
func appendWALValue(b []byte, tag byte, v any) []byte {
	switch tag {
	case walTagInt8:
		return append(b, byte(v.(int8)))
	case walTagInt16:
		return binary.LittleEndian.AppendUint16(b, uint16(v.(int16)))
	case walTagInt32:
		return binary.LittleEndian.AppendUint32(b, uint32(v.(int32)))
	case walTagInt64:
		return binary.LittleEndian.AppendUint64(b, uint64(v.(int64)))
	case walTagUint8:
		return append(b, v.(uint8))
	case walTagUint16:
		return binary.LittleEndian.AppendUint16(b, v.(uint16))
	case walTagUint32:
		return binary.LittleEndian.AppendUint32(b, v.(uint32))
	case walTagUint64:
		return binary.LittleEndian.AppendUint64(b, v.(uint64))
	case walTagFloat32:
		return binary.LittleEndian.AppendUint32(b, math.Float32bits(v.(float32)))
	case walTagFloat64:
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(v.(float64)))
	case walTagString:
		s := v.(string)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
		return append(b, s...)
	}
	panic("table: unknown wal value tag")
}

// walCursor is a bounds-checked little-endian reader over one record.
type walCursor struct {
	b   []byte
	off int
	err error
}

func (c *walCursor) fail() {
	if c.err == nil {
		c.err = fmt.Errorf("wal replay: truncated record")
	}
}

func (c *walCursor) take(n int) []byte {
	if c.err != nil || c.off+n > len(c.b) {
		c.fail()
		return nil
	}
	p := c.b[c.off : c.off+n]
	c.off += n
	return p
}

func (c *walCursor) u8() byte {
	p := c.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (c *walCursor) u16() uint16 {
	p := c.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

func (c *walCursor) u32() uint32 {
	p := c.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (c *walCursor) u64() uint64 {
	p := c.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// value decodes one tagged value into the boxed representation the
// delta store carries.
func (c *walCursor) value(tag byte) any {
	switch tag {
	case walTagInt8:
		return int8(c.u8())
	case walTagInt16:
		return int16(c.u16())
	case walTagInt32:
		return int32(c.u32())
	case walTagInt64:
		return int64(c.u64())
	case walTagUint8:
		return c.u8()
	case walTagUint16:
		return c.u16()
	case walTagUint32:
		return c.u32()
	case walTagUint64:
		return c.u64()
	case walTagFloat32:
		return math.Float32frombits(c.u32())
	case walTagFloat64:
		return math.Float64frombits(c.u64())
	case walTagString:
		n := int(c.u32())
		if c.err == nil && n > len(c.b)-c.off {
			c.fail()
			return nil
		}
		return string(c.take(n))
	}
	c.fail()
	return nil
}

// encodeWALCommit frames one committed batch: its shard-local base row
// and every staged value in column order.
func encodeWALCommit(tags []byte, base int, rows [][]any) []byte {
	b := make([]byte, 0, 16+len(tags)+len(rows)*len(tags)*8)
	b = append(b, walRecCommit)
	b = binary.LittleEndian.AppendUint64(b, uint64(base))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(rows)))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(tags)))
	b = append(b, tags...)
	for _, row := range rows {
		for ci, tag := range tags {
			b = appendWALValue(b, tag, row[ci])
		}
	}
	return b
}

func decodeWALCommit(payload []byte, want []byte) (base int, rows [][]any, err error) {
	c := &walCursor{b: payload, off: 1}
	base = int(c.u64())
	nrows := int(c.u32())
	ncols := int(c.u16())
	if c.err != nil {
		return 0, nil, c.err
	}
	if ncols != len(want) {
		return 0, nil, fmt.Errorf("wal replay: commit carries %d columns, table has %d", ncols, len(want))
	}
	tags := c.take(ncols)
	if !slices.Equal(tags, want) {
		return 0, nil, fmt.Errorf("wal replay: commit column types %v do not match table %v", tags, want)
	}
	if nrows < 0 || nrows > len(payload) {
		return 0, nil, fmt.Errorf("wal replay: commit claims %d rows in a %d-byte record", nrows, len(payload))
	}
	rows = make([][]any, nrows)
	for r := range rows {
		row := make([]any, ncols)
		for ci, tag := range want {
			row[ci] = c.value(tag)
		}
		if c.err != nil {
			return 0, nil, c.err
		}
		rows[r] = row
	}
	if c.off != len(payload) {
		return 0, nil, fmt.Errorf("wal replay: %d trailing bytes after commit record", len(payload)-c.off)
	}
	return base, rows, nil
}

func encodeWALUpdate(id int, ci int, tag byte, v any) []byte {
	b := make([]byte, 0, 24)
	b = append(b, walRecUpdate)
	b = binary.LittleEndian.AppendUint64(b, uint64(id))
	b = binary.LittleEndian.AppendUint16(b, uint16(ci))
	b = append(b, tag)
	return appendWALValue(b, tag, v)
}

func decodeWALUpdate(payload []byte, tags []byte) (id, ci int, v any, err error) {
	c := &walCursor{b: payload, off: 1}
	id = int(c.u64())
	ci = int(c.u16())
	tag := c.u8()
	if c.err != nil {
		return 0, 0, nil, c.err
	}
	if ci >= len(tags) {
		return 0, 0, nil, fmt.Errorf("wal replay: update names column %d, table has %d", ci, len(tags))
	}
	if tag != tags[ci] {
		return 0, 0, nil, fmt.Errorf("wal replay: update tag %d does not match column type tag %d", tag, tags[ci])
	}
	v = c.value(tag)
	if c.err != nil {
		return 0, 0, nil, c.err
	}
	return id, ci, v, nil
}

func encodeWALDelete(id int) []byte {
	b := make([]byte, 0, 9)
	b = append(b, walRecDelete)
	return binary.LittleEndian.AppendUint64(b, uint64(id))
}

func decodeWALDelete(payload []byte) (int, error) {
	c := &walCursor{b: payload, off: 1}
	id := int(c.u64())
	return id, c.err
}

func encodeWALCompact(pre, post int) []byte {
	b := make([]byte, 0, 17)
	b = append(b, walRecCompact)
	b = binary.LittleEndian.AppendUint64(b, uint64(pre))
	return binary.LittleEndian.AppendUint64(b, uint64(post))
}

func decodeWALCompact(payload []byte) (pre, post int, err error) {
	c := &walCursor{b: payload, off: 1}
	pre, post = int(c.u64()), int(c.u64())
	return pre, post, c.err
}

func encodeWALCheckpoint(rows int) []byte {
	b := make([]byte, 0, 9)
	b = append(b, walRecCheckpoint)
	return binary.LittleEndian.AppendUint64(b, uint64(rows))
}

func decodeWALCheckpoint(payload []byte) (int, error) {
	c := &walCursor{b: payload, off: 1}
	rows := int(c.u64())
	return rows, c.err
}

// ---- checkpoint plumbing (consumed by WriteFile in persist.go) ----

// walCutLocked cuts the attached log while an image drain holds the
// exclusive lock: commits are excluded, so every record at or past the
// returned segment belongs strictly after the image. The cut is stashed
// until the image is durable and walCheckpoint consumes it. Callers
// hold the write lock. No-op without a WAL.
//
//imprintvet:locks held=mu
func (t *Table) walCutLocked() error {
	d := t.delta
	if d == nil || d.wal == nil {
		return nil
	}
	seq, err := d.wal.Cut()
	if err != nil {
		return fmt.Errorf("table %s: wal cut: %w", t.name, err)
	}
	d.pendingCut = walCut{seq: seq, rows: t.rows, ok: true}
	return nil
}

// walKeepSeqLocked is the cut persisted inside the image being written.
// Without a fresh cut it carries the checkpoint the table itself was
// loaded with forward, so re-persisting never regresses the watermark.
// Callers hold at least the read lock.
//
//imprintvet:locks held=mu.R
func (t *Table) walKeepSeqLocked() uint64 {
	if d := t.delta; d != nil && d.pendingCut.ok {
		return d.pendingCut.seq
	}
	return t.walKeepSeq
}

// walCheckpoint consumes the pending cut after the image it is baked
// into became durable: it logs a checkpoint record and drops the log
// segments the image supersedes. Safe to call without a WAL (no-op).
func (t *Table) walCheckpoint() error {
	if sh := t.shard; sh != nil {
		for c, kid := range sh.kids {
			if err := kid.walCheckpoint(); err != nil {
				return fmt.Errorf("shard %d: %w", c, err)
			}
		}
		return nil
	}
	t.mu.Lock()
	d := t.delta
	var cut walCut
	if d != nil {
		cut = d.pendingCut
		d.pendingCut = walCut{}
	}
	lg := (*wal.Log)(nil)
	if d != nil {
		lg = d.wal
	}
	t.mu.Unlock()
	if lg == nil || !cut.ok {
		return nil
	}
	if err := lg.TruncateBefore(cut.seq, encodeWALCheckpoint(cut.rows)); err != nil {
		return fmt.Errorf("table %s: wal checkpoint: %w", t.name, err)
	}
	return nil
}

// walCut is a pending checkpoint: the first log segment the in-flight
// image does NOT cover, and the image's row count.
type walCut struct {
	seq  uint64
	rows int
	ok   bool
}
