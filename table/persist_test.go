package table

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"
)

func TestTablePersistRoundTrip(t *testing.T) {
	tb, qty, price, status := mkTable(t, 3000, 21)
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != tb.Name() || got.Rows() != tb.Rows() {
		t.Fatalf("meta mismatch: %s/%d", got.Name(), got.Rows())
	}
	cols := got.Columns()
	if len(cols) != 3 || cols[0] != "qty" || cols[1] != "price" || cols[2] != "status" {
		t.Fatalf("columns = %v", cols)
	}
	// Values survive.
	gq, err := Column[int64](got, "qty")
	if err != nil {
		t.Fatal(err)
	}
	for i := range qty {
		if gq[i] != qty[i] {
			t.Fatalf("qty[%d] differs", i)
		}
	}
	// Indexes survive and queries agree.
	pred := And(
		Range[int64]("qty", 950, 1100),
		Range[float64]("price", 10.0, 60.0),
		Equals[uint8]("status", 1),
	)
	a, _, err := tb.Select().Where(pred).IDs()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := got.Select().Where(pred).IDs()
	if err != nil {
		t.Fatal(err)
	}
	equalIDs(t, b, a, "persisted query")
	_ = price
	_ = status
	// The unindexed column stayed unindexed.
	if ix, _ := Index[uint8](got, "status"); ix != nil {
		t.Error("NoIndex column gained an index through persistence")
	}
	// Loaded tables keep working: append a batch.
	batch := got.NewBatch()
	if err := Append(batch, "qty", []int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := Append(batch, "price", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := Append(batch, "status", []uint8{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := batch.Commit(); err != nil {
		t.Fatal(err)
	}
	if got.Rows() != tb.Rows()+2 {
		t.Errorf("append after load: rows = %d", got.Rows())
	}
}

func TestTablePersistRefusesPendingDeletes(t *testing.T) {
	tb, _, _, _ := mkTable(t, 100, 22)
	if err := tb.Delete(5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.Write(&buf); err == nil {
		t.Fatal("Write accepted pending deletes")
	}
	tb.Compact()
	if err := tb.Write(&buf); err != nil {
		t.Fatalf("Write after compact: %v", err)
	}
}

func TestTablePersistCorruption(t *testing.T) {
	tb, _, _, _ := mkTable(t, 500, 23)
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Garbage and truncations.
	if _, err := Read(bytes.NewReader([]byte("not a table"))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("garbage: %v", err)
	}
	for _, cut := range []int{0, 3, 10, len(raw) / 3, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Random bit flips: must never load silently as valid with wrong
	// content... at minimum the index CRCs and structural checks catch
	// flips in their regions; header flips fail fast. We only require
	// no panic and, when the flip hits an index image, an error.
	rng := rand.New(rand.NewPCG(24, 24))
	for trial := 0; trial < 30; trial++ {
		corrupted := append([]byte(nil), raw...)
		corrupted[rng.IntN(len(corrupted))] ^= 1 << uint(rng.IntN(8))
		_, _ = Read(bytes.NewReader(corrupted)) // must not panic
	}
}

func TestTablePersistEmptyTable(t *testing.T) {
	tb := New("empty")
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 0 || len(got.Columns()) != 0 {
		t.Errorf("empty table loaded as %d rows %v", got.Rows(), got.Columns())
	}
}
