package table

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

// mkSharded builds an empty sharded table with small segments so tests
// cross segment and shard boundaries cheaply.
func mkSharded(t *testing.T, shards, segRows int) *Table {
	t.Helper()
	tb := NewWithOptions("orders", TableOptions{SegmentRows: segRows, Shards: shards})
	if tb.shard == nil || tb.shard.nshards != shards {
		t.Fatalf("Shards=%d did not build a sharded table", shards)
	}
	return tb
}

// commitRows appends one batch of sequential int64 values starting at
// lo (with a derived string column) and commits it.
func commitRows(t *testing.T, tb *Table, lo, n int) {
	t.Helper()
	vals := make([]int64, n)
	strs := make([]string, n)
	for i := range vals {
		vals[i] = int64(lo + i)
		strs[i] = fmt.Sprintf("c%d", (lo+i)%7)
	}
	b := tb.NewBatch()
	if err := Append(b, "qty", vals); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendStrings("city", strs); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
}

func seedSharded(t *testing.T, shards, segRows, rows int) *Table {
	t.Helper()
	tb := mkSharded(t, shards, segRows)
	if err := AddColumn(tb, "qty", []int64{}, Imprints, core.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("city", []string{}, Imprints, core.Options{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	commitRows(t, tb, 0, rows)
	return tb
}

func TestShardGidMapping(t *testing.T) {
	for _, nshards := range []int{2, 3, 4, 8} {
		sh := newShardState(128, nshards)
		// Round trip every local id of every shard across a few segments.
		for c := 0; c < nshards; c++ {
			for lid := 0; lid < 5*128; lid += 37 {
				gid := sh.gidOf(c, lid)
				gc, glid := sh.decode(gid)
				if gc != c || glid != lid {
					t.Fatalf("N=%d: decode(gidOf(%d,%d)=%d) = (%d,%d)", nshards, c, lid, gid, gc, glid)
				}
				if gotSeg, wantSeg := gid/128, (lid/128)*nshards+c; gotSeg != wantSeg {
					t.Fatalf("N=%d: gid %d in gseg %d, want %d", nshards, gid, gotSeg, wantSeg)
				}
			}
		}
		// Negative ids route to shard 0 unchanged (range-check errors).
		if c, lid := sh.decode(-5); c != 0 || lid != -5 {
			t.Fatalf("decode(-5) = (%d,%d)", c, lid)
		}
	}
}

func TestShardDenseSplit(t *testing.T) {
	const segRows, nshards = 4, 3
	vals := make([]int, 30)
	for i := range vals {
		vals[i] = i
	}
	parts := shardDenseSplit(vals, segRows, nshards)
	total := 0
	for c, part := range parts {
		if want := denseKidRows(len(vals), segRows, nshards, c); len(part) != want {
			t.Fatalf("shard %d holds %d values, denseKidRows says %d", c, len(part), want)
		}
		sh := &shardState{nshards: nshards, segRows: segRows}
		for lid, v := range part {
			if got := sh.gidOf(c, lid); got != v {
				t.Fatalf("shard %d local %d = %d, want gid %d", c, lid, v, got)
			}
		}
		total += len(part)
	}
	if total != len(vals) {
		t.Fatalf("split dropped rows: %d != %d", total, len(vals))
	}
}

// TestShardSerialCommitDenseIDs pins the routing invariant the oracle
// relies on: a lone writer fills the global id space densely in commit
// order, exactly as an unsharded table would.
func TestShardSerialCommitDenseIDs(t *testing.T) {
	for _, shards := range []int{2, 4} {
		tb := seedSharded(t, shards, 128, 1000)
		if tb.Rows() != 1000 {
			t.Fatalf("shards=%d: Rows = %d", shards, tb.Rows())
		}
		vals, err := Column[int64](tb, "qty")
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vals {
			if v != int64(i) {
				t.Fatalf("shards=%d: global row %d = %d (ids not dense)", shards, i, v)
			}
		}
		ids, _, err := tb.Select().IDs()
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range ids {
			if int(id) != i {
				t.Fatalf("shards=%d: ids[%d] = %d", shards, i, id)
			}
		}
	}
}

func TestShardPointOps(t *testing.T) {
	tb := seedSharded(t, 4, 128, 1000)
	// Point reads, updates and deletes address global ids across every
	// shard boundary.
	for _, id := range []int{0, 127, 128, 500, 999} {
		row, err := tb.ReadRow(id)
		if err != nil {
			t.Fatal(err)
		}
		if row["qty"].(int64) != int64(id) {
			t.Fatalf("ReadRow(%d): qty = %v", id, row["qty"])
		}
	}
	if err := Update(tb, "qty", 300, int64(-7)); err != nil {
		t.Fatal(err)
	}
	if row, _ := tb.ReadRow(300); row["qty"].(int64) != -7 {
		t.Fatalf("update not visible: %v", row["qty"])
	}
	if err := tb.UpdateString("city", 301, "zzz"); err != nil {
		t.Fatal(err)
	}
	if row, _ := tb.ReadRow(301); row["city"].(string) != "zzz" {
		t.Fatalf("string update not visible: %v", row["city"])
	}
	if err := tb.Delete(302); err != nil {
		t.Fatal(err)
	}
	if !tb.IsDeleted(302) || tb.LiveRows() != 999 {
		t.Fatal("delete not visible")
	}
	n, _, err := tb.Select().Count()
	if err != nil || n != 999 {
		t.Fatalf("Count = %d (%v)", n, err)
	}
	if removed := tb.Compact(); removed != 1 {
		t.Fatalf("Compact removed %d", removed)
	}
	if tb.Rows() != 999 {
		t.Fatalf("Rows after compact = %d", tb.Rows())
	}
	if _, err := tb.ReadRow(-1); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := tb.ReadRow(10_000_000); err == nil {
		t.Fatal("out-of-range id accepted")
	}
}

// TestShardSealLockScope pins the tentpole's locking fix: a seal
// install write-locks only the owning shard, so readers and writers on
// every other shard proceed while it is held. The test holds shard 1's
// write lock (exactly what a seal install acquires) and asserts that a
// point read and a batch commit routed to shard 0 complete promptly.
func TestShardSealLockScope(t *testing.T) {
	tb := seedSharded(t, 2, 128, 2*128) // shard 0 and 1 hold one full segment each
	sh := tb.shard

	// Simulate an in-flight seal install on shard 1.
	sh.kids[1].mu.Lock()
	defer sh.kids[1].mu.Unlock()

	done := make(chan error, 1)
	go func() {
		// Row 0 lives on shard 0; the next serial commit also routes to
		// shard 0 (its next free gid, 256, is the global minimum).
		if _, err := tb.ReadRow(0); err != nil {
			done <- err
			return
		}
		b := tb.NewBatch()
		if err := Append(b, "qty", []int64{1}); err != nil {
			done <- err
			return
		}
		if err := b.AppendStrings("city", []string{"x"}); err != nil {
			done <- err
			return
		}
		done <- b.Commit()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shard-0 read/commit blocked by shard-1 write lock")
	}
	if got := int(sh.rows[0].Load()); got != 129 {
		t.Fatalf("commit did not land on shard 0: shard 0 holds %d rows", got)
	}
}

func TestShardIngestStatsPerShard(t *testing.T) {
	tb := seedSharded(t, 4, 128, 0)
	if err := tb.EnableDeltaIngest(IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := tb.EnableDeltaIngest(IngestOptions{}); err == nil {
		t.Fatal("double EnableDeltaIngest accepted")
	}
	defer tb.Close()
	commitRows(t, tb, 0, 300) // serial: 128 + 128 + 44 across shards 0,1,2
	st := tb.IngestStats()
	if !st.Enabled {
		t.Fatal("IngestStats not enabled")
	}
	if len(st.ShardDeltaRows) != 4 {
		t.Fatalf("ShardDeltaRows = %v, want 4 entries", st.ShardDeltaRows)
	}
	sum := 0
	for _, n := range st.ShardDeltaRows {
		sum += n
	}
	if sum != st.DeltaRows || sum != 300 {
		t.Fatalf("per-shard depths %v do not sum to DeltaRows %d", st.ShardDeltaRows, st.DeltaRows)
	}
	if st.MaxShardDeltaRows() != 128 {
		t.Fatalf("MaxShardDeltaRows = %d, want 128", st.MaxShardDeltaRows())
	}
	// Unsharded tables report a single-entry depth list.
	single := New("u")
	if err := AddColumn(single, "a", []int64{}, NoIndex, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := single.EnableDeltaIngest(IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	b := single.NewBatch()
	if err := Append(b, "a", []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if us := single.IngestStats(); len(us.ShardDeltaRows) != 1 || us.ShardDeltaRows[0] != 3 || us.MaxShardDeltaRows() != 3 {
		t.Fatalf("unsharded ShardDeltaRows = %v", us.ShardDeltaRows)
	}
}

func TestShardAddColumnErrors(t *testing.T) {
	tb := seedSharded(t, 2, 128, 300)
	if err := AddColumn(tb, "qty", make([]int64, 300), NoIndex, core.Options{}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if err := AddColumn(tb, "extra", make([]int64, 299), NoIndex, core.Options{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := AddColumn(tb, "extra", make([]int64, 300), NoIndex, core.Options{}); err != nil {
		t.Fatal(err)
	}
	vals, err := Column[int64](tb, "extra")
	if err != nil || len(vals) != 300 {
		t.Fatalf("Column(extra): %d vals, %v", len(vals), err)
	}
}
