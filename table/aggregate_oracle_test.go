package table

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/core"
)

// The randomized aggregate oracle: Aggregate, GroupBy and
// OrderBy+Limit must equal a naive full-scan fold of the table's
// mirrored contents, across appends, updates (numeric and string),
// deletes and compaction, at parallelism 1, 2 and 8 — including stages
// where whole segments are answered purely from summaries.

// aggMirror mirrors the table for the naive fold.
type aggMirror struct {
	a   []int64
	f   []float64
	s   []string
	del []bool
}

func refreshAggMirror(t *testing.T, tb *Table) *aggMirror {
	t.Helper()
	m := &aggMirror{}
	var err error
	if m.a, err = Column[int64](tb, "a"); err != nil {
		t.Fatal(err)
	}
	if m.f, err = Column[float64](tb, "f"); err != nil {
		t.Fatal(err)
	}
	if m.s, err = tb.StringColumn("s"); err != nil {
		t.Fatal(err)
	}
	m.del = make([]bool, len(m.a))
	for i := range m.del {
		m.del[i] = tb.IsDeleted(i)
	}
	return m
}

// naiveAgg folds every qualifying live row the slow way.
type naiveAgg struct {
	n             uint64
	sumA          int64
	minA, maxA    int64
	sumF          float64
	minS, maxS    string
	minIDsByFDesc []uint32 // ids ranked by (f desc, id asc)
	minIDsByAAsc  []uint32 // ids ranked by (a asc, id asc)
	groupCount    map[string]uint64
	groupSumA     map[string]int64
	groupCountByA map[int64]uint64
}

func naiveFold(m *aggMirror, match func(id int) bool) *naiveAgg {
	o := &naiveAgg{
		minA: math.MaxInt64, maxA: math.MinInt64,
		groupCount: map[string]uint64{}, groupSumA: map[string]int64{},
		groupCountByA: map[int64]uint64{},
	}
	var ids []uint32
	for i := range m.a {
		if m.del[i] || !match(i) {
			continue
		}
		if o.n == 0 {
			o.minS, o.maxS = m.s[i], m.s[i]
		} else {
			o.minS, o.maxS = min(o.minS, m.s[i]), max(o.maxS, m.s[i])
		}
		o.n++
		o.sumA += m.a[i]
		o.minA, o.maxA = min(o.minA, m.a[i]), max(o.maxA, m.a[i])
		o.sumF += m.f[i]
		o.groupCount[m.s[i]]++
		o.groupSumA[m.s[i]] += m.a[i]
		o.groupCountByA[m.a[i]]++
		ids = append(ids, uint32(i))
	}
	o.minIDsByFDesc = append([]uint32(nil), ids...)
	sort.SliceStable(o.minIDsByFDesc, func(x, y int) bool {
		a, b := o.minIDsByFDesc[x], o.minIDsByFDesc[y]
		if m.f[a] != m.f[b] {
			return m.f[a] > m.f[b]
		}
		return a < b
	})
	o.minIDsByAAsc = append([]uint32(nil), ids...)
	sort.SliceStable(o.minIDsByAAsc, func(x, y int) bool {
		a, b := o.minIDsByAAsc[x], o.minIDsByAAsc[y]
		if m.a[a] != m.a[b] {
			return m.a[a] < m.a[b]
		}
		return a < b
	})
	return o
}

// closeF compares floats with relative tolerance: the executor sums
// per segment before merging in segment order, the oracle sums
// sequentially, so the two roundings may differ in the last bits.
func closeF(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func checkAggOracle(t *testing.T, tb *Table, stage string, pred Predicate, match func(m *aggMirror, id int) bool) {
	t.Helper()
	m := refreshAggMirror(t, tb)
	want := naiveFold(m, func(id int) bool { return match(m, id) })
	for _, par := range []int{1, 2, 8} {
		opts := SelectOptions{Parallelism: par}
		tag := fmt.Sprintf("%s/par=%d", stage, par)

		res, _, err := tb.Select().Where(pred).Options(opts).
			Aggregate(CountAll(), Sum("a"), Min("a"), Max("a"), Sum("f"), Avg("f"), Min("s"), Max("s"))
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		if res.At(0).Int != int64(want.n) || res.Rows != want.n {
			t.Fatalf("%s: count = %d (rows %d), want %d", tag, res.At(0).Int, res.Rows, want.n)
		}
		if want.n == 0 {
			for i := 1; i < res.Len(); i++ {
				if res.At(i).Valid {
					t.Fatalf("%s: empty selection yielded valid %v", tag, res.At(i))
				}
			}
		} else {
			if res.At(1).Int != want.sumA || res.At(2).Int != want.minA || res.At(3).Int != want.maxA {
				t.Fatalf("%s: int aggs %v/%v/%v, want %d/%d/%d",
					tag, res.At(1).Int, res.At(2).Int, res.At(3).Int, want.sumA, want.minA, want.maxA)
			}
			if !closeF(res.At(4).Float, want.sumF) || !closeF(res.At(5).Float, want.sumF/float64(want.n)) {
				t.Fatalf("%s: float aggs %v/%v, want %v/%v",
					tag, res.At(4).Float, res.At(5).Float, want.sumF, want.sumF/float64(want.n))
			}
			if res.At(6).Str != want.minS || res.At(7).Str != want.maxS {
				t.Fatalf("%s: string aggs %q/%q, want %q/%q",
					tag, res.At(6).Str, res.At(7).Str, want.minS, want.maxS)
			}
		}

		g, _, err := tb.Select().Where(pred).Options(opts).GroupBy("s").Aggregate(CountAll(), Sum("a"))
		if err != nil {
			t.Fatalf("%s: groupby: %v", tag, err)
		}
		if len(g.Groups) != len(want.groupCount) {
			t.Fatalf("%s: %d groups, want %d", tag, len(g.Groups), len(want.groupCount))
		}
		for i, grp := range g.Groups {
			key := grp.Key.(string)
			if grp.Rows != want.groupCount[key] || grp.Aggs[1].Int != want.groupSumA[key] {
				t.Fatalf("%s: group %q = %d rows sum %d, want %d/%d",
					tag, key, grp.Rows, grp.Aggs[1].Int, want.groupCount[key], want.groupSumA[key])
			}
			if i > 0 && g.Groups[i-1].Key.(string) >= key {
				t.Fatalf("%s: groups unsorted", tag)
			}
		}
		gi, _, err := tb.Select().Where(pred).Options(opts).GroupBy("a").Aggregate(CountAll())
		if err != nil {
			t.Fatalf("%s: int groupby: %v", tag, err)
		}
		if len(gi.Groups) != len(want.groupCountByA) {
			t.Fatalf("%s: %d int groups, want %d", tag, len(gi.Groups), len(want.groupCountByA))
		}
		for _, grp := range gi.Groups {
			if grp.Rows != want.groupCountByA[grp.Key.(int64)] {
				t.Fatalf("%s: int group %v = %d rows, want %d",
					tag, grp.Key, grp.Rows, want.groupCountByA[grp.Key.(int64)])
			}
		}

		for _, k := range []int{3, 17} {
			ids, _, err := tb.Select().Where(pred).Options(opts).OrderBy(Desc("f")).Limit(k).IDs()
			if err != nil {
				t.Fatalf("%s: topk: %v", tag, err)
			}
			wantIDs := want.minIDsByFDesc
			if len(wantIDs) > k {
				wantIDs = wantIDs[:k]
			}
			if fmt.Sprint(ids) != fmt.Sprint(wantIDs) {
				t.Fatalf("%s: top-%d by f desc = %v, want %v", tag, k, ids, wantIDs)
			}
		}
		ids, _, err := tb.Select().Where(pred).Options(opts).OrderBy(Asc("a")).IDs()
		if err != nil {
			t.Fatalf("%s: full order: %v", tag, err)
		}
		if fmt.Sprint(ids) != fmt.Sprint(want.minIDsByAAsc) {
			t.Fatalf("%s: full order by a asc diverged", tag)
		}

		// The scalar residual path must reproduce the vectorized
		// aggregation byte for byte: same partials, same merge order,
		// hence bit-identical floats too.
		sopts := opts
		sopts.Scalar = true
		sres, _, err := tb.Select().Where(pred).Options(sopts).
			Aggregate(CountAll(), Sum("a"), Min("a"), Max("a"), Sum("f"), Avg("f"), Min("s"), Max("s"))
		if err != nil {
			t.Fatalf("%s: scalar aggregate: %v", tag, err)
		}
		if fmt.Sprint(sres.Values()) != fmt.Sprint(res.Values()) || sres.Rows != res.Rows {
			t.Fatalf("%s: scalar aggregation diverged\nscalar     %v\nvectorized %v", tag, sres, res)
		}
		sids, _, err := tb.Select().Where(pred).Options(sopts).OrderBy(Asc("a")).IDs()
		if err != nil {
			t.Fatalf("%s: scalar order: %v", tag, err)
		}
		if fmt.Sprint(sids) != fmt.Sprint(ids) {
			t.Fatalf("%s: scalar ordered ids diverged", tag)
		}
		sg, _, err := tb.Select().Where(pred).Options(sopts).GroupBy("s").Aggregate(CountAll(), Sum("a"))
		if err != nil {
			t.Fatalf("%s: scalar groupby: %v", tag, err)
		}
		if fmt.Sprint(sg.Groups) != fmt.Sprint(g.Groups) {
			t.Fatalf("%s: scalar grouping diverged", tag)
		}
	}
}

func TestAggregateOracleRandomized(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 43))
	const segRows = 192
	symbols := []string{"ant", "bee", "cat", "dog", "eel", "fox", "gnu"}

	gen := func(n int) ([]int64, []float64, []string) {
		a := make([]int64, n)
		f := make([]float64, n)
		s := make([]string, n)
		for i := range a {
			a[i] = int64(rng.IntN(50))
			f[i] = math.Round(rng.Float64()*1000) / 4
			s[i] = symbols[rng.IntN(len(symbols))]
		}
		return a, f, s
	}

	tb := NewWithOptions("aggoracle", TableOptions{SegmentRows: segRows})
	a, f, s := gen(700)
	if err := AddColumn(tb, "a", a, Imprints, core.Options{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if err := AddColumn(tb, "f", f, Zonemap, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("s", s, Imprints, core.Options{Seed: 4}); err != nil {
		t.Fatal(err)
	}

	preds := func() []struct {
		name  string
		pred  Predicate
		match func(m *aggMirror, id int) bool
	} {
		lo := int64(rng.IntN(30))
		hi := lo + int64(rng.IntN(20)) + 1
		sym := symbols[rng.IntN(len(symbols))]
		return []struct {
			name  string
			pred  Predicate
			match func(m *aggMirror, id int) bool
		}{
			{"all", nil, func(m *aggMirror, id int) bool { return true }},
			{"range", Range[int64]("a", lo, hi), func(m *aggMirror, id int) bool {
				return m.a[id] >= lo && m.a[id] < hi
			}},
			{"or", Or(LessThan[int64]("a", lo), StrEquals("s", sym)), func(m *aggMirror, id int) bool {
				return m.a[id] < lo || m.s[id] == sym
			}},
		}
	}

	check := func(stage string) {
		t.Helper()
		for _, p := range preds() {
			checkAggOracle(t, tb, stage+"/"+p.name, p.pred, p.match)
		}
	}

	check("initial")

	// Append across a segment boundary.
	na, nf, ns := gen(500)
	b := tb.NewBatch()
	if err := Append(b, "a", na); err != nil {
		t.Fatal(err)
	}
	if err := Append(b, "f", nf); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendStrings("s", ns); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	check("appended")

	// In-place updates, including values that widen summaries and novel
	// strings that re-encode a segment dictionary.
	for u := 0; u < 150; u++ {
		id := rng.IntN(tb.Rows())
		switch rng.IntN(3) {
		case 0:
			if err := Update(tb, "a", id, int64(rng.IntN(80))-10); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := Update(tb, "f", id, rng.Float64()*2000-500); err != nil {
				t.Fatal(err)
			}
		case 2:
			sym := symbols[rng.IntN(len(symbols))]
			if rng.IntN(4) == 0 {
				sym = fmt.Sprintf("novel-%d", u)
			}
			if err := tb.UpdateString("s", id, sym); err != nil {
				t.Fatal(err)
			}
		}
	}
	check("updated")

	// Deletes disable the wholesale tiers but not correctness.
	for d := 0; d < 120; d++ {
		if err := tb.Delete(rng.IntN(tb.Rows())); err != nil {
			t.Fatal(err)
		}
	}
	check("deleted")

	// Compact renumbers ids and restores exact summaries.
	tb.Compact()
	check("compacted")

	// A final append after compaction.
	na, nf, ns = gen(260)
	b = tb.NewBatch()
	if err := Append(b, "a", na); err != nil {
		t.Fatal(err)
	}
	if err := Append(b, "f", nf); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendStrings("s", ns); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	check("appended2")

	// The select-all stage after compaction must have exercised the
	// summary pushdown: prove it once explicitly.
	_, st, err := tb.Select().Aggregate(Min("a"), Max("a"), CountAll())
	if err != nil {
		t.Fatal(err)
	}
	if st.SummaryAggRows == 0 {
		t.Fatalf("compacted select-all never hit the summary tier: %+v", st)
	}
}
