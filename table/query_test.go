package table

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/core"
)

// cities is a small categorical vocabulary with shared prefixes so
// prefix and range predicates have interesting shapes.
var cities = []string{
	"Amsterdam", "Antwerp", "Athens", "Berlin", "Bern",
	"Lisbon", "London", "Lyon", "Madrid", "Milan",
	"Paris", "Porto", "Prague", "Rome", "Rotterdam",
}

// mkMixedTable builds a relation with numeric and string columns:
// qty (int64 walk, imprints), price (float64, imprints), city (string,
// code imprint), tag (string, unindexed).
func mkMixedTable(t *testing.T, n int, seed uint64) (*Table, []int64, []float64, []string, []string) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0x5715))
	qty := make([]int64, n)
	price := make([]float64, n)
	city := make([]string, n)
	tag := make([]string, n)
	v := int64(1000)
	for i := 0; i < n; i++ {
		v += int64(rng.IntN(21)) - 10
		qty[i] = v
		price[i] = rng.Float64() * 100
		// Locally clustered cities: runs of the same value, the shape
		// imprints exploit.
		city[i] = cities[(i/97+rng.IntN(2))%len(cities)]
		tag[i] = []string{"new", "seen", "done"}[rng.IntN(3)]
	}
	tb := New("orders")
	if err := AddColumn(tb, "qty", qty, Imprints, core.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := AddColumn(tb, "price", price, Imprints, core.Options{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("city", city, Imprints, core.Options{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("tag", tag, NoIndex, core.Options{}); err != nil {
		t.Fatal(err)
	}
	return tb, qty, price, city, tag
}

func wantIDs(n int, oracle func(i int) bool) []uint32 {
	var want []uint32
	for i := 0; i < n; i++ {
		if oracle(i) {
			want = append(want, uint32(i))
		}
	}
	return want
}

func TestStringLeafKinds(t *testing.T) {
	tb, _, _, city, tag := mkMixedTable(t, 4000, 1)
	for _, tc := range []struct {
		name   string
		pred   Predicate
		oracle func(i int) bool
	}{
		{"range", StrRange("city", "Berlin", "Madrid"),
			func(i int) bool { return city[i] >= "Berlin" && city[i] <= "Madrid" }},
		{"atleast", StrAtLeast("city", "Paris"),
			func(i int) bool { return city[i] >= "Paris" }},
		{"lessthan", StrLessThan("city", "Bern"),
			func(i int) bool { return city[i] < "Bern" }},
		{"equals", StrEquals("city", "London"),
			func(i int) bool { return city[i] == "London" }},
		{"in", StrIn("city", "Lyon", "Rome", "Nowhere"),
			func(i int) bool { return city[i] == "Lyon" || city[i] == "Rome" }},
		{"prefix", StrPrefix("city", "A"),
			func(i int) bool { return strings.HasPrefix(city[i], "A") }},
		{"prefix-multi", StrPrefix("city", "Ro"),
			func(i int) bool { return strings.HasPrefix(city[i], "Ro") }},
		{"empty-range", StrRange("city", "X", "Y"), func(i int) bool { return false }},
		{"unindexed-equals", StrEquals("tag", "seen"),
			func(i int) bool { return tag[i] == "seen" }},
		{"unindexed-prefix", StrPrefix("tag", "s"),
			func(i int) bool { return strings.HasPrefix(tag[i], "s") }},
	} {
		got, _, err := tb.Select().Where(tc.pred).IDs()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		equalIDs(t, got, wantIDs(4000, tc.oracle), tc.name)
	}
}

func TestMixedStringNumericTrees(t *testing.T) {
	tb, qty, price, city, tag := mkMixedTable(t, 6000, 2)
	pred := Or(
		And(
			Range[int64]("qty", 950, 1100),
			StrPrefix("city", "A"),
			LessThan[float64]("price", 60.0),
		),
		AndNot(
			StrIn("city", "Paris", "Rome"),
			Or(AtLeast[float64]("price", 20.0), StrEquals("tag", "done")),
		),
	)
	got, _, err := tb.Select().Where(pred).IDs()
	if err != nil {
		t.Fatal(err)
	}
	want := wantIDs(6000, func(i int) bool {
		a := qty[i] >= 950 && qty[i] < 1100 && strings.HasPrefix(city[i], "A") && price[i] < 60
		b := (city[i] == "Paris" || city[i] == "Rome") && !(price[i] >= 20 || tag[i] == "done")
		return a || b
	})
	equalIDs(t, got, want, "mixed string/numeric tree")

	n, _, err := tb.Select().Where(pred).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(want)) {
		t.Errorf("Count = %d, want %d", n, len(want))
	}
}

func TestStringTypeMismatches(t *testing.T) {
	tb, _, _, _, _ := mkMixedTable(t, 500, 3)
	if _, _, err := tb.Select().Where(Range[int64]("city", 1, 2)).IDs(); err == nil {
		t.Error("numeric bound on string column accepted")
	}
	if _, _, err := tb.Select().Where(StrRange("qty", "a", "b")).IDs(); err == nil {
		t.Error("string bound on numeric column accepted")
	}
	if _, _, err := tb.Select().Where(StrPrefix("qty", "a")).IDs(); err == nil {
		t.Error("prefix on numeric column accepted")
	}
	if _, _, err := tb.Select().Where(In[int64]("city", 5)).IDs(); err == nil {
		t.Error("numeric IN-list on string column accepted")
	}
}

func TestValuesPerCachelineValidation(t *testing.T) {
	tb := New("vpc")
	// Non-divisors of BlockRows (and overshoots) are rejected up front:
	// they would break the cacheline-to-block run renormalization.
	for _, bad := range []int{3, 48, 65, 128, -8} {
		if err := AddColumn(tb, "v", []int64{1, 2, 3}, Imprints, core.Options{ValuesPerCacheline: bad}); err == nil {
			t.Errorf("ValuesPerCacheline=%d accepted", bad)
		}
		if err := tb.AddStringColumn("s", []string{"a", "b", "c"}, Imprints, core.Options{ValuesPerCacheline: bad}); err == nil {
			t.Errorf("string ValuesPerCacheline=%d accepted", bad)
		}
	}
	// Invalid MaxBins errors instead of panicking inside rebuild.
	for _, bad := range []int{7, -8, 65, 128} {
		if err := AddColumn(tb, "v", []int64{1, 2, 3}, Imprints, core.Options{MaxBins: bad}); err == nil {
			t.Errorf("MaxBins=%d accepted", bad)
		}
	}
	// Divisors work end to end.
	if err := AddColumn(tb, "v", []int64{5, 6, 7, 8}, Imprints, core.Options{ValuesPerCacheline: 16}); err != nil {
		t.Fatal(err)
	}
	ids, _, err := tb.Select().Where(Equals[int64]("v", 6)).IDs()
	if err != nil || len(ids) != 1 || ids[0] != 1 {
		t.Errorf("vpc=16 query: %v %v", ids, err)
	}
}

func TestUnindexedStringEmptyLeafShortCircuit(t *testing.T) {
	tb, _, _, _, _ := mkMixedTable(t, 2000, 20)
	// "tag" is unindexed; a value outside the dictionary is provably
	// empty and must not scan a single row.
	ids, st, err := tb.Select().Where(StrEquals("tag", "no-such-tag")).IDs()
	if err != nil || len(ids) != 0 {
		t.Fatalf("absent tag: %v %v", ids, err)
	}
	if st.Comparisons != 0 {
		t.Errorf("provably-empty leaf spent %d comparisons", st.Comparisons)
	}
}

func TestZonemapLeafIgnoresScanThreshold(t *testing.T) {
	ts := make([]int64, 4000)
	for i := range ts {
		ts[i] = int64(i)
	}
	tb := New("zm")
	if err := AddColumn(tb, "ts", ts, Zonemap, core.Options{}); err != nil {
		t.Fatal(err)
	}
	q := tb.Select().Where(Range[int64]("ts", 100, 110)).Options(SelectOptions{ScanThreshold: 0.4})
	plan, err := q.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Root.Access != "zonemap" || plan.Root.Reason != "" {
		t.Errorf("zonemap leaf fell back to %s (%s) under a low threshold", plan.Root.Access, plan.Root.Reason)
	}
	if plan.Root.Selectivity >= 0 {
		t.Errorf("zonemap leaf reports a fabricated estimate %f", plan.Root.Selectivity)
	}
	ids, st, err := q.IDs()
	if err != nil || len(ids) != 10 {
		t.Fatalf("zonemap query: %v %v", ids, err)
	}
	if st.Probes == 0 {
		t.Error("zonemap was not probed")
	}
}

func TestCompactToZeroThenAppend(t *testing.T) {
	tb := New("drain")
	if err := AddColumn(tb, "v", []int64{1, 2, 3}, Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("s", []string{"a", "b", "c"}, Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 3; id++ {
		if err := tb.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if removed := tb.Compact(); removed != 3 {
		t.Fatalf("Compact removed %d", removed)
	}
	// Appending into the drained table must not hit a stale index.
	b := tb.NewBatch()
	if err := Append(b, "v", []int64{10, 11}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendStrings("s", []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	ids, _, err := tb.Select().Where(And(AtLeast[int64]("v", 10), StrEquals("s", "y"))).IDs()
	if err != nil || len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("query after drain+append: %v %v", ids, err)
	}
}

func TestQueryRowsIteration(t *testing.T) {
	tb, qty, _, city, _ := mkMixedTable(t, 3000, 4)
	q := tb.Select("qty", "city").Where(AtLeast[int64]("qty", 1000))
	want := wantIDs(3000, func(i int) bool { return qty[i] >= 1000 })

	var got []uint32
	for id, row := range q.Rows() {
		if row.Get("qty") != qty[id] || row.Get("city") != city[id] {
			t.Fatalf("row %d: %v, want qty=%d city=%s", id, row, qty[id], city[id])
		}
		if row.Get("price") != nil {
			t.Fatalf("row %d: unprojected column leaked: %v", id, row)
		}
		if row.ID() != id {
			t.Fatalf("row id %d != key %d", row.ID(), id)
		}
		got = append(got, uint32(id))
	}
	if q.Err() != nil {
		t.Fatal(q.Err())
	}
	equalIDs(t, got, want, "Rows() full iteration")

	// Mid-stream break stops cleanly (and releases the read lock: the
	// writer call below would deadlock otherwise).
	seen := 0
	for range q.Rows() {
		seen++
		if seen == 7 {
			break
		}
	}
	if seen != 7 {
		t.Errorf("broke after %d rows, want 7", seen)
	}
	if err := tb.Delete(0); err != nil {
		t.Fatalf("write after broken iteration: %v", err)
	}

	// Limit caps Rows, IDs and Count alike.
	limited := 0
	for range tb.Select().Where(AtLeast[int64]("qty", 1000)).Limit(5).Rows() {
		limited++
	}
	if limited != 5 {
		t.Errorf("Limit(5) yielded %d rows", limited)
	}
	ids, _, err := tb.Select().Where(AtLeast[int64]("qty", 1000)).Limit(5).IDs()
	if err != nil || len(ids) != 5 {
		t.Errorf("Limit(5).IDs() = %d ids (%v)", len(ids), err)
	}
	n, _, err := tb.Select().Where(AtLeast[int64]("qty", 1000)).Limit(5).Count()
	if err != nil || n != 5 {
		t.Errorf("Limit(5).Count() = %d (%v)", n, err)
	}

	// Limit(0) and negative limits mean "no rows", not "unlimited" —
	// the value a pagination remainder naturally produces.
	for _, zero := range []int{0, -3} {
		ids, _, err := tb.Select().Limit(zero).IDs()
		if err != nil || len(ids) != 0 {
			t.Errorf("Limit(%d).IDs() = %d rows (%v)", zero, len(ids), err)
		}
		zn, _, err := tb.Select().Limit(zero).Count()
		if err != nil || zn != 0 {
			t.Errorf("Limit(%d).Count() = %d (%v)", zero, zn, err)
		}
		got := 0
		for range tb.Select().Limit(zero).Rows() {
			got++
		}
		if got != 0 {
			t.Errorf("Limit(%d).Rows() yielded %d", zero, got)
		}
	}
}

func TestQueryNoPredicate(t *testing.T) {
	tb, _, _, _, _ := mkMixedTable(t, 300, 5)
	ids, st, err := tb.Select().IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 300 {
		t.Fatalf("match-all returned %d of 300", len(ids))
	}
	if st.Comparisons != 0 {
		t.Errorf("match-all spent %d comparisons", st.Comparisons)
	}
	if err := tb.Delete(5); err != nil {
		t.Fatal(err)
	}
	n, _, err := tb.Select().Count()
	if err != nil || n != 299 {
		t.Errorf("match-all count after delete = %d (%v)", n, err)
	}
}

func TestQueryErrors(t *testing.T) {
	tb, _, _, _, _ := mkMixedTable(t, 100, 6)
	if _, _, err := tb.Select("nope").IDs(); err == nil {
		t.Error("unknown projected column accepted")
	}
	if _, _, err := tb.Select("nope").Count(); err == nil {
		t.Error("unknown projected column accepted by Count")
	}
	if _, err := tb.Select("nope").Explain(); err == nil {
		t.Error("unknown projected column accepted by Explain")
	}
	q := tb.Select("nope")
	for range q.Rows() {
		t.Fatal("Rows yielded despite projection error")
	}
	if q.Err() == nil {
		t.Error("Rows did not record projection error")
	}
	q2 := tb.Select().Where(Range[int64]("nope", 0, 1))
	for range q2.Rows() {
		t.Fatal("Rows yielded despite plan error")
	}
	if q2.Err() == nil {
		t.Error("Rows did not record plan error")
	}
}

func TestExplainShape(t *testing.T) {
	tb, _, _, _, _ := mkMixedTable(t, 5000, 7)
	// Zonemap column rides along to show up in the plan.
	ts := make([]int64, 5000)
	for i := range ts {
		ts[i] = int64(i)
	}
	if err := AddColumn(tb, "ts", ts, Zonemap, core.Options{}); err != nil {
		t.Fatal(err)
	}
	q := tb.Select("qty", "city").Where(And(
		Range[int64]("qty", 990, 1010),
		StrPrefix("city", "A"),
		Range[int64]("ts", 100, 4000),
		AtLeast[float64]("price", 0.0), // unselective: should become a scan
	)).Limit(10)
	plan, err := q.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Table != "orders" || plan.TotalRows != 5000 {
		t.Errorf("plan header: %+v", plan)
	}
	if len(plan.Columns) != 2 || plan.Columns[0] != "qty" || plan.Columns[1] != "city" {
		t.Errorf("plan projection: %v", plan.Columns)
	}
	if plan.Root.Op != "and" || len(plan.Root.Children) != 4 {
		t.Fatalf("plan root: %s with %d children", plan.Root.Op, len(plan.Root.Children))
	}
	access := map[string]string{}
	for _, kid := range plan.Root.Children {
		access[kid.Column] = kid.Access
	}
	if access["qty"] != "imprints" || access["city"] != "imprints" || access["ts"] != "zonemap" {
		t.Errorf("access paths: %v", access)
	}
	if access["price"] != "scan" {
		t.Errorf("unselective leaf access = %q, want scan", access["price"])
	}
	if plan.Stats.Probes == 0 {
		t.Error("plan recorded no index probes")
	}
	text := plan.String()
	for _, want := range []string{
		"select qty, city from orders limit 10",
		"and:", "imprints", "zonemap", "scan (unselective)",
		`city prefix "A"`, "est=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("plan text missing %q:\n%s", want, text)
		}
	}
	// The rendering is a tree: one root, one branch glyph per node.
	if strings.Count(text, "├─")+strings.Count(text, "└─") != 5 {
		t.Errorf("plan tree glyphs wrong:\n%s", text)
	}
}

func TestStringColumnBatchAppend(t *testing.T) {
	tb, _, _, city, _ := mkMixedTable(t, 1000, 8)
	all := append([]string(nil), city...)

	// Fast path: appended strings already in the dictionary.
	b := tb.NewBatch()
	known := []string{"Paris", "Rome", "Lisbon", "Paris"}
	if err := Append(b, "qty", []int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := Append(b, "price", []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendStrings("city", known); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendStrings("tag", []string{"new", "new", "seen", "done"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	all = append(all, known...)

	// Slow path: a novel string forces re-encode + rebuild.
	b = tb.NewBatch()
	novel := []string{"Zagreb", "Amsterdam"}
	if err := Append(b, "qty", []int64{5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := Append(b, "price", []float64{5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendStrings("city", novel); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendStrings("tag", []string{"new", "done"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	all = append(all, novel...)

	if tb.Rows() != 1006 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	got, _, err := tb.Select().Where(StrAtLeast("city", "Rome")).IDs()
	if err != nil {
		t.Fatal(err)
	}
	equalIDs(t, got, wantIDs(1006, func(i int) bool { return all[i] >= "Rome" }), "after appends")

	// Type confusion across Append flavors errors cleanly.
	b = tb.NewBatch()
	if err := Append(b, "city", []int64{1}); err == nil {
		t.Error("numeric append to string column accepted")
	}
	if err := b.AppendStrings("qty", []string{"x"}); err == nil {
		t.Error("string append to numeric column accepted")
	}
}

func TestUpdateString(t *testing.T) {
	tb, _, _, city, _ := mkMixedTable(t, 2000, 9)
	live := append([]string(nil), city...)

	// In-dictionary update widens the imprint.
	if err := tb.UpdateString("city", 42, "Paris"); err != nil {
		t.Fatal(err)
	}
	live[42] = "Paris"
	// Novel string forces re-encode.
	if err := tb.UpdateString("city", 43, "Utrecht"); err != nil {
		t.Fatal(err)
	}
	live[43] = "Utrecht"

	got, _, err := tb.Select().Where(StrRange("city", "Paris", "Utrecht")).IDs()
	if err != nil {
		t.Fatal(err)
	}
	equalIDs(t, got, wantIDs(2000, func(i int) bool { return live[i] >= "Paris" && live[i] <= "Utrecht" }), "after string updates")

	if err := tb.UpdateString("city", 99999, "X"); err == nil {
		t.Error("out-of-range string update accepted")
	}
	if err := tb.UpdateString("qty", 0, "X"); err == nil {
		t.Error("string update on numeric column accepted")
	}

	vals, err := tb.StringColumn("city")
	if err != nil {
		t.Fatal(err)
	}
	for i := range live {
		if vals[i] != live[i] {
			t.Fatalf("StringColumn[%d] = %q, want %q", i, vals[i], live[i])
		}
	}
}

func TestStringColumnDeleteCompactMaintain(t *testing.T) {
	tb, qty, _, city, _ := mkMixedTable(t, 3000, 10)
	deleted := map[int]bool{}
	rng := rand.New(rand.NewPCG(11, 11))
	for d := 0; d < 900; d++ {
		id := rng.IntN(3000)
		if err := tb.Delete(id); err != nil {
			t.Fatal(err)
		}
		deleted[id] = true
	}
	pred := And(StrPrefix("city", "P"), AtLeast[int64]("qty", 0))
	got, _, err := tb.Select().Where(pred).IDs()
	if err != nil {
		t.Fatal(err)
	}
	equalIDs(t, got, wantIDs(3000, func(i int) bool {
		return !deleted[i] && strings.HasPrefix(city[i], "P")
	}), "string pred with deletes")

	rep := tb.Maintain(MaintainOptions{DeletedFraction: 0.1})
	if !rep.Compacted || rep.RowsRemoved != len(deleted) {
		t.Fatalf("Maintain report: %+v, want compaction of %d", rep, len(deleted))
	}
	var liveCity []string
	for i := range city {
		if !deleted[i] {
			liveCity = append(liveCity, city[i])
		}
	}
	got, _, err = tb.Select().Where(StrPrefix("city", "P")).IDs()
	if err != nil {
		t.Fatal(err)
	}
	equalIDs(t, got, wantIDs(len(liveCity), func(i int) bool {
		return strings.HasPrefix(liveCity[i], "P")
	}), "string pred after compact")
	_ = qty
}

func TestStringColumnPersistence(t *testing.T) {
	tb, _, _, city, tag := mkMixedTable(t, 2500, 12)
	_ = tag
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 2500 || len(got.Columns()) != 4 {
		t.Fatalf("loaded %d rows, %v", got.Rows(), got.Columns())
	}
	pred := Or(StrPrefix("city", "L"), StrEquals("tag", "done"))
	a, _, err := tb.Select().Where(pred).IDs()
	if err != nil {
		t.Fatal(err)
	}
	b, st, err := got.Select().Where(pred).IDs()
	if err != nil {
		t.Fatal(err)
	}
	equalIDs(t, b, a, "persisted string query")
	if st.Probes == 0 {
		t.Error("persisted code imprint did not probe")
	}
	vals, err := got.StringColumn("city")
	if err != nil {
		t.Fatal(err)
	}
	for i := range city {
		if vals[i] != city[i] {
			t.Fatalf("persisted city[%d] = %q, want %q", i, vals[i], city[i])
		}
	}
}

// Random mixed trees against a naive oracle, string leaves included.
func TestRandomMixedTrees(t *testing.T) {
	tb, qty, price, city, tag := mkMixedTable(t, 3000, 13)
	rng := rand.New(rand.NewPCG(14, 14))
	leaf := func() (Predicate, func(i int) bool) {
		switch rng.IntN(6) {
		case 0:
			lo := int64(850 + rng.IntN(300))
			hi := lo + int64(rng.IntN(200))
			return Range[int64]("qty", lo, hi), func(i int) bool { return qty[i] >= lo && qty[i] < hi }
		case 1:
			x := rng.Float64() * 100
			return LessThan[float64]("price", x), func(i int) bool { return price[i] < x }
		case 2:
			c := cities[rng.IntN(len(cities))]
			return StrEquals("city", c), func(i int) bool { return city[i] == c }
		case 3:
			p := cities[rng.IntN(len(cities))][:1+rng.IntN(2)]
			return StrPrefix("city", p), func(i int) bool { return strings.HasPrefix(city[i], p) }
		case 4:
			lo, hi := cities[rng.IntN(len(cities))], cities[rng.IntN(len(cities))]
			if lo > hi {
				lo, hi = hi, lo
			}
			return StrRange("city", lo, hi), func(i int) bool { return city[i] >= lo && city[i] <= hi }
		default:
			s := []string{"new", "seen", "done"}[rng.IntN(3)]
			return StrEquals("tag", s), func(i int) bool { return tag[i] == s }
		}
	}
	for trial := 0; trial < 50; trial++ {
		p1, f1 := leaf()
		p2, f2 := leaf()
		p3, f3 := leaf()
		var pred Predicate
		var oracle func(i int) bool
		switch rng.IntN(3) {
		case 0:
			pred = And(p1, Or(p2, p3))
			oracle = func(i int) bool { return f1(i) && (f2(i) || f3(i)) }
		case 1:
			pred = Or(p1, AndNot(p2, p3))
			oracle = func(i int) bool { return f1(i) || (f2(i) && !f3(i)) }
		default:
			pred = AndNot(And(p1, p2), p3)
			oracle = func(i int) bool { return f1(i) && f2(i) && !f3(i) }
		}
		got, _, err := tb.Select().Where(pred).IDs()
		if err != nil {
			t.Fatal(err)
		}
		equalIDs(t, got, wantIDs(3000, oracle), "random mixed tree")
	}
}
