package table

import (
	"fmt"
	"strings"
)

// Row is one materialized result row of a Query: the projected column
// values, fetched only after the row survived the candidate-run check
// (late materialization). Values are accessed by column name or
// projection position.
type Row struct {
	id    int
	names []string // shared with the query; do not mutate
	vals  []any
}

// ID returns the row id the values were fetched from.
func (r Row) ID() int { return r.id }

// Columns lists the projected column names in projection order. The
// slice is shared by every Row of one iteration — treat it as
// read-only (mutating it would desync names from values on subsequent
// rows).
func (r Row) Columns() []string { return r.names }

// Get returns the value of a projected column, or nil when the column
// is not part of the projection. Note that Get cannot distinguish the
// two cases — a projected column whose value is nil and a column that
// was never projected both return nil; use Lookup when the difference
// matters.
func (r Row) Get(name string) any {
	v, _ := r.Lookup(name)
	return v
}

// Lookup returns the value of a projected column and whether the
// column is part of the projection, distinguishing "not projected"
// (nil, false) from a genuinely nil projected value (nil, true).
func (r Row) Lookup(name string) (any, bool) {
	for i, n := range r.names {
		if n == name {
			return r.vals[i], true
		}
	}
	return nil, false
}

// Value returns the value at projection position i.
func (r Row) Value(i int) any { return r.vals[i] }

// Map copies the row into a name -> value map (ReadRow-shaped).
func (r Row) Map() map[string]any {
	m := make(map[string]any, len(r.names))
	for i, n := range r.names {
		m[n] = r.vals[i]
	}
	return m
}

// String renders the row as "col=val col=val ..." for logs.
func (r Row) String() string {
	var sb strings.Builder
	for i, n := range r.names {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%v", n, r.vals[i])
	}
	return sb.String()
}
