//go:build race

package table

// raceEnabled reports that the race detector is active; allocation-
// count pins are skipped, since instrumentation allocates.
const raceEnabled = true
