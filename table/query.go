package table

import (
	"fmt"
	"iter"

	"repro/internal/core"
)

// Query is a lazy selection over one table, built by Table.Select. It
// records a projection, a predicate tree, and a row limit; nothing runs
// until one of the executors — Rows, IDs, Count, Explain — is called,
// and each execution sees a consistent snapshot of the table (readers
// share the table lock, writers exclude them).
//
// A Query value is reusable (each executor re-runs the plan) but not
// safe for concurrent use; build one per goroutine. Queries spawned
// from a prepared statement (Prepared.Exec / Prepared.Bind) execute its
// compiled plan instead of re-planning the predicate tree.
type Query struct {
	t       *Table
	cols    []string
	pred    Predicate
	prep    *Prepared      // non-nil for executions of a prepared statement
	binds   map[string]any // parameter bindings for prep
	bindErr error          // sticky builder error (bad Bind, Where on prepared)
	limit   int
	limited bool // Limit was called; limit 0 then means "no rows"
	opts    SelectOptions
	err     error // sticky error from the last Rows iteration
}

// Select starts a lazy query projecting the named columns; no columns
// means every column, in definition order. Column names are validated
// at execution time.
func (t *Table) Select(cols ...string) *Query {
	return &Query{t: t, cols: cols}
}

// Where filters the query by a predicate tree. Multiple Where calls
// AND their predicates together. Executions of a prepared statement
// carry a fixed, pre-compiled predicate; Where on one is an error.
func (q *Query) Where(p Predicate) *Query {
	switch {
	case q.prep != nil:
		if p != nil && q.bindErr == nil {
			q.bindErr = fmt.Errorf("table %s: cannot add predicates to a prepared execution", q.t.name)
		}
	case p == nil:
	case q.pred == nil:
		q.pred = p
	default:
		q.pred = And(q.pred, p)
	}
	return q
}

// Bind supplies the value of one named parameter of a prepared
// execution (see Table.Prepare). The value's dynamic type must match
// the placeholder's declared type — []V / []string for InP
// placeholders. Binding errors are sticky and reported by the executor.
func (q *Query) Bind(name string, v any) *Query {
	if q.prep == nil {
		if q.bindErr == nil {
			q.bindErr = fmt.Errorf("table %s: Bind(%q) on an unprepared query (use Table.Prepare)", q.t.name, name)
		}
		return q
	}
	if err := q.prep.checkBind(name, v); err != nil {
		if q.bindErr == nil {
			q.bindErr = err
		}
		return q
	}
	if q.binds == nil {
		q.binds = make(map[string]any, len(q.prep.params))
	}
	q.binds[name] = v
	return q
}

// Limit caps the number of result rows. Limit(0) — or a negative n,
// as computed pagination remainders can produce — selects no rows and
// short-circuits execution before the predicate is evaluated (only the
// projection is still validated); a query that never calls Limit is
// unbounded. Count is capped too, so "exists" probes can use Limit(1).
func (q *Query) Limit(n int) *Query {
	if n < 0 {
		n = 0
	}
	q.limit = n
	q.limited = true
	return q
}

// Options tunes evaluation (e.g. the scan-vs-probe threshold).
func (q *Query) Options(o SelectOptions) *Query {
	q.opts = o
	return q
}

// plan evaluates the query down to candidate runs; callers hold the
// table's read lock. Ad-hoc queries compile their predicate tree and
// execute it immediately; prepared executions reuse the statement's
// cached compilation. A nil predicate matches every row exactly.
func (q *Query) plan(st *core.QueryStats) (evaluated, error) {
	if q.bindErr != nil {
		return evaluated{}, q.bindErr
	}
	if q.prep != nil {
		return q.prep.executeLocked(q.binds, q.opts, st)
	}
	if q.pred == nil {
		runs := q.t.matchAll()
		node := &PlanNode{Op: "all", Pred: "true"}
		node.setRuns(runs)
		return evaluated{runs: runs, plan: node}, nil
	}
	cn, err := q.t.compile(q.pred)
	if err != nil {
		return evaluated{}, err
	}
	return q.t.execute(cn, nil, q.opts, st)
}

// projection resolves the projected column names; callers hold the read
// lock. An empty projection selects every column in definition order.
func (q *Query) projection() ([]string, []anyColumn, error) {
	// Copy in both branches: names escapes into Row values, and
	// aliasing t.order (or the reusable query's own cols) would let
	// callers mutate query or table state through Row.Columns.
	names := append([]string(nil), q.cols...)
	if len(names) == 0 {
		names = append(names, q.t.order...)
	}
	cols := make([]anyColumn, len(names))
	for i, name := range names {
		c, ok := q.t.cols[name]
		if !ok {
			return nil, nil, fmt.Errorf("table %s: no column %q", q.t.name, name)
		}
		cols[i] = c
	}
	return names, cols, nil
}

// checkProjection validates the projected names without materializing
// the projection (IDs and Count never fetch values); callers hold the
// read lock.
func (q *Query) checkProjection() error {
	for _, name := range q.cols {
		if _, ok := q.t.cols[name]; !ok {
			return fmt.Errorf("table %s: no column %q", q.t.name, name)
		}
	}
	return nil
}

// IDs executes the query and returns the ascending ids of qualifying,
// non-deleted rows, with the evaluation stats.
func (q *Query) IDs() ([]uint32, core.QueryStats, error) {
	q.t.mu.RLock()
	defer q.t.mu.RUnlock()
	var st core.QueryStats
	if err := q.checkProjection(); err != nil {
		return nil, st, err
	}
	if q.limited && q.limit == 0 {
		return nil, st, nil
	}
	ev, err := q.plan(&st)
	if err != nil {
		return nil, st, err
	}
	var res []uint32
	q.t.scanRuns(ev, &st, nil, func(id int) bool {
		res = append(res, uint32(id))
		return !q.limited || len(res) < q.limit
	})
	return res, st, nil
}

// Count executes the query and returns the number of qualifying rows
// (capped by Limit) without materializing ids. Exact candidate runs are
// counted wholesale — a popcount over the deleted bitmap replaces the
// per-row walk even while deletes are pending — with the shortcut's row
// tally reported in QueryStats.FastCountedRows (and previewed by
// Plan.FastCountRows).
func (q *Query) Count() (uint64, core.QueryStats, error) {
	q.t.mu.RLock()
	defer q.t.mu.RUnlock()
	var st core.QueryStats
	if err := q.checkProjection(); err != nil {
		return 0, st, err
	}
	if q.limited && q.limit == 0 {
		return 0, st, nil
	}
	ev, err := q.plan(&st)
	if err != nil {
		return 0, st, err
	}
	limit := uint64(q.limit)
	var n uint64
	q.t.scanRuns(ev, &st, func(live int) bool {
		n += uint64(live)
		return !q.limited || n < limit
	}, func(id int) bool {
		n++
		return !q.limited || n < limit
	})
	if q.limited && n > limit {
		n = limit
	}
	return n, st, nil
}

// Rows executes the query as a streaming iterator over (id, Row) pairs:
// qualifying rows are materialized one at a time — only the projected
// columns of rows that survive the candidate-run check are ever fetched
// (late materialization end to end), so breaking out early does no
// wasted work and large results never build an id slice.
//
// The table's read lock is held for the duration of the iteration, and
// sync.RWMutex is not reentrant: calling any write method (Update,
// Delete, Batch.Commit, Compact, Maintain, AddColumn, ...) from inside
// the loop body deadlocks, and nested reads can too once a writer is
// queued. To mutate matching rows, materialize the ids first (IDs) and
// write after the loop. Plan errors (unknown column, type-mismatched
// bound) yield no rows and are reported by Err.
func (q *Query) Rows() iter.Seq2[int, Row] {
	return func(yield func(int, Row) bool) {
		q.t.mu.RLock()
		defer q.t.mu.RUnlock()
		q.err = nil
		var st core.QueryStats
		names, cols, err := q.projection()
		if err != nil {
			q.err = err
			return
		}
		if q.limited && q.limit == 0 {
			return
		}
		ev, err := q.plan(&st)
		if err != nil {
			q.err = err
			return
		}
		emitted := 0
		q.t.scanRuns(ev, &st, nil, func(id int) bool {
			vals := make([]any, len(cols))
			for i, c := range cols {
				vals[i] = c.valueAt(id)
			}
			if !yield(id, Row{id: id, names: names, vals: vals}) {
				return false
			}
			emitted++
			return !q.limited || emitted < q.limit
		})
	}
}

// Err reports the plan error of the last Rows iteration, if any. IDs,
// Count and Explain return their errors directly.
func (q *Query) Err() error { return q.err }

// scanRuns is the single traversal shared by IDs, Count and Rows: it
// walks the candidate runs, skips deleted rows, applies the residual
// check of non-exact runs (counting comparisons into st), and hands
// each qualifying row to visit. Exact runs are offered wholesale to
// visitRun when it is non-nil (Count's fast path) as their live row
// count — the span minus a popcount over the deleted bitmap, no per-row
// work; rows of such runs are otherwise visited individually. Either
// callback returns false to stop. Callers hold the read lock.
func (t *Table) scanRuns(ev evaluated, st *core.QueryStats, visitRun func(live int) bool, visit func(id int) bool) {
	for _, r := range ev.runs {
		from, to := t.blockSpan(r)
		if visitRun != nil && r.Exact {
			live := t.liveRows(from, to)
			st.FastCountedRows += uint64(live)
			if !visitRun(live) {
				return
			}
			continue
		}
		for id := from; id < to; id++ {
			if t.deleted != nil && t.deleted.Get(id) {
				continue
			}
			if !r.Exact && ev.check != nil {
				st.Comparisons++
				if !ev.check(uint32(id)) {
					continue
				}
			}
			if !visit(id) {
				return
			}
		}
	}
}

// deletedInSpan popcounts the deleted bitmap over [from, to); callers
// hold the read lock.
func (t *Table) deletedInSpan(from, to int) int {
	if t.deleted == nil || t.ndel == 0 {
		return 0
	}
	return t.deleted.CountRange(from, to)
}

// liveRows is the single definition of the Count fast path's wholesale
// tally for one row span: the span minus a popcount over the deleted
// bitmap, no per-row work. scanRuns applies it to exact runs and
// Explain previews it (fastCountRows); callers hold the read lock.
func (t *Table) liveRows(from, to int) int {
	return to - from - t.deletedInSpan(from, to)
}

// fastCountRows previews the Count fast path's coverage across a run
// list: the live rows of its exact runs. Callers hold the read lock.
func (t *Table) fastCountRows(runs []core.CandidateRun) uint64 {
	var n uint64
	for _, r := range runs {
		if r.Exact {
			from, to := t.blockSpan(r)
			n += uint64(t.liveRows(from, to))
		}
	}
	return n
}

// blockSpan converts a candidate run to its [from, to) row interval;
// callers hold the read lock.
func (t *Table) blockSpan(r core.CandidateRun) (from, to int) {
	from = int(r.Start) * BlockRows
	to = (int(r.Start) + int(r.Count)) * BlockRows
	if to > t.rows {
		to = t.rows
	}
	return from, to
}
