package table

import (
	"fmt"
	"iter"
	"math/bits"

	"repro/internal/core"
)

// Query is a lazy selection over one table, built by Table.Select. It
// records a projection, a predicate tree, and a row limit; nothing runs
// until one of the executors — Rows, IDs, Count, Explain — is called,
// and each execution sees a consistent snapshot of the table (readers
// share the table lock, writers exclude them).
//
// Execution is segment-parallel: the compiled predicate is evaluated
// against every storage segment independently — segments whose summary
// provably excludes the predicate are pruned without probing — across a
// worker pool bounded by SelectOptions.Parallelism, and the per-segment
// results are merged in segment order, so ids come back ascending and
// identical at every parallelism level. Limit cancels segments no
// worker has started yet.
//
// A Query value is reusable (each executor re-runs the plan) but not
// safe for concurrent use; build one per goroutine. Queries spawned
// from a prepared statement (Prepared.Exec / Prepared.Bind) execute its
// compiled plan instead of re-planning the predicate tree.
type Query struct {
	t       *Table
	cols    []string
	pred    Predicate
	prep    *Prepared      // non-nil for executions of a prepared statement
	binds   map[string]any // parameter bindings for prep
	bindErr error          // sticky builder error (bad Bind, Where on prepared)
	limit   int
	limited bool       // Limit was called; limit 0 then means "no rows"
	order   *OrderSpec // OrderBy ordering; nil means ascending id order
	opts    SelectOptions
	err     error // sticky error from the last Rows iteration
}

// Select starts a lazy query projecting the named columns; no columns
// means every column, in definition order. Column names are validated
// at execution time.
func (t *Table) Select(cols ...string) *Query {
	return &Query{t: t, cols: cols}
}

// Where filters the query by a predicate tree. Multiple Where calls
// AND their predicates together. Executions of a prepared statement
// carry a fixed, pre-compiled predicate; Where on one is an error.
func (q *Query) Where(p Predicate) *Query {
	switch {
	case q.prep != nil:
		if p != nil && q.bindErr == nil {
			q.bindErr = fmt.Errorf("table %s: cannot add predicates to a prepared execution", q.t.name)
		}
	case p == nil:
	case q.pred == nil:
		q.pred = p
	default:
		q.pred = And(q.pred, p)
	}
	return q
}

// Bind supplies the value of one named parameter of a prepared
// execution (see Table.Prepare). The value's dynamic type must match
// the placeholder's declared type — []V / []string for InP
// placeholders. Binding errors are sticky and reported by the executor.
func (q *Query) Bind(name string, v any) *Query {
	if q.prep == nil {
		if q.bindErr == nil {
			q.bindErr = fmt.Errorf("table %s: Bind(%q) on an unprepared query (use Table.Prepare)", q.t.name, name)
		}
		return q
	}
	if err := q.prep.checkBind(name, v); err != nil {
		if q.bindErr == nil {
			q.bindErr = err
		}
		return q
	}
	if q.binds == nil {
		q.binds = make(map[string]any, len(q.prep.params))
	}
	q.binds[name] = v
	return q
}

// Limit caps the number of result rows. Limit(0) — or a negative n,
// as computed pagination remainders can produce — selects no rows and
// short-circuits execution before the predicate is evaluated (only the
// projection is still validated); a query that never calls Limit is
// unbounded. Count is capped too, so "exists" probes can use Limit(1).
func (q *Query) Limit(n int) *Query {
	if n < 0 {
		n = 0
	}
	q.limit = n
	q.limited = true
	return q
}

// Options tunes evaluation (e.g. the scan-vs-probe threshold and the
// segment parallelism).
func (q *Query) Options(o SelectOptions) *Query {
	q.opts = o
	return q
}

// bind resolves this execution down to an execution tree ready for
// per-segment evaluation; callers hold the table's read lock. Ad-hoc
// queries compile their predicate tree now; prepared executions reuse
// the statement's cached compilation and translate only parameterized
// leaves. A nil tree (en == nil with nil error) matches every row.
func (q *Query) bind() (*execNode, error) {
	if q.bindErr != nil {
		return nil, q.bindErr
	}
	if q.prep != nil {
		return q.prep.bindLocked(q.binds)
	}
	if q.pred == nil {
		return nil, nil
	}
	cn, err := q.t.compile(q.pred)
	if err != nil {
		return nil, err
	}
	return q.t.bindTree(cn, nil)
}

// projection resolves the projected column names; callers hold the read
// lock. An empty projection selects every column in definition order.
func (q *Query) projection() ([]string, []anyColumn, error) {
	// Copy in both branches: names escapes into Row values, and
	// aliasing t.order (or the reusable query's own cols) would let
	// callers mutate query or table state through Row.Columns.
	names := append([]string(nil), q.cols...)
	if len(names) == 0 {
		names = append(names, q.t.order...)
	}
	cols := make([]anyColumn, len(names))
	for i, name := range names {
		c, ok := q.t.cols[name]
		if !ok {
			return nil, nil, fmt.Errorf("table %s: no column %q", q.t.name, name)
		}
		cols[i] = c
	}
	return names, cols, nil
}

// checkProjection validates the projected names without materializing
// the projection (IDs and Count never fetch values); callers hold the
// read lock.
func (q *Query) checkProjection() error {
	for _, name := range q.cols {
		if _, ok := q.t.cols[name]; !ok {
			return fmt.Errorf("table %s: no column %q", q.t.name, name)
		}
	}
	return nil
}

// deltaIDs appends the qualifying buffered delta rows' ids to res
// (capped by Limit), evaluating the execution tree exactly over each
// live row. Delta ids are all larger than sealed ids, so appending
// after the segment merge keeps ids ascending. Callers hold the read
// lock.
//
//imprintvet:locks held=mu.R
func (q *Query) deltaIDs(en *execNode, res []uint32, st *core.QueryStats) []uint32 {
	view := q.t.deltaViewLocked()
	if view == nil {
		return res
	}
	match := view.matcher(en)
	view.scan(match, st, func(id int, _ []any) bool {
		res = append(res, uint32(id))
		return !q.limited || len(res) < q.limit
	})
	return res
}

// deltaCount adds the buffered delta rows' qualifying count to n
// (capped by Limit); callers hold the read lock.
//
//imprintvet:locks held=mu.R
func (q *Query) deltaCount(en *execNode, n uint64, st *core.QueryStats) uint64 {
	view := q.t.deltaViewLocked()
	if view == nil {
		return n
	}
	match := view.matcher(en)
	limit := uint64(q.limit)
	view.scan(match, st, func(int, []any) bool {
		n++
		return !q.limited || n < limit
	})
	return n
}

// collectIDs is the segment worker behind IDs and Rows: evaluate the
// tree against one segment and materialize its qualifying global ids
// into a pooled scratch buffer. Each surviving block's selection mask
// expands to ids by trailing-zero iteration; the buffer may run at most
// one block past the limit (the merging consumer truncates).
//
//imprintvet:locks held=mu.R
func (q *Query) collectIDs(en *execNode, s int) segOut {
	var o segOut
	ev := q.t.evalSegment(en, s, q.opts, &o.st, false)
	buf, reused := getIDScratch()
	if reused {
		o.st.ScratchReused++
	}
	ids := *buf
	q.t.walkBlocks(s, ev, &o.st, nil, func(base int, mask uint64) bool {
		ids = core.AppendMaskIDs(ids, uint32(base), mask)
		return !q.limited || len(ids) < q.limit
	})
	releaseEval(&ev)
	*buf = ids
	o.ids = buf
	return o
}

// IDs executes the query and returns the ids of qualifying,
// non-deleted rows, with the evaluation stats. Without OrderBy the ids
// come back ascending; with OrderBy they come back in rank order (the
// ordering column's value in the requested direction, ties by
// ascending id), capped by Limit — the top-k.
func (q *Query) IDs() ([]uint32, core.QueryStats, error) {
	if q.t.shard != nil {
		return q.shardIDs()
	}
	q.t.mu.RLock()
	defer q.t.mu.RUnlock()
	var st core.QueryStats
	if err := q.checkProjection(); err != nil {
		return nil, st, err
	}
	if q.order != nil {
		return q.orderedIDsLocked()
	}
	if q.limited && q.limit == 0 {
		return nil, st, nil
	}
	en, err := q.bind()
	if err != nil {
		return nil, st, err
	}
	nsegs := q.t.segCount()
	if resolveParallelism(q.opts, nsegs) == 1 {
		return q.idsSerial(en, nsegs)
	}
	return q.idsParallel(en, nsegs)
}

// idsSerial is the one-worker IDs loop: every segment's masks expand
// into one shared pooled buffer on the calling goroutine, and the only
// allocation left in steady state is the returned slice itself (the
// vectorized zero-alloc pin relies on this path).
//
//imprintvet:locks held=mu.R
func (q *Query) idsSerial(en *execNode, nsegs int) ([]uint32, core.QueryStats, error) {
	var st core.QueryStats
	buf, reused := getIDScratch()
	if reused {
		st.ScratchReused++
	}
	ids := *buf
	for s := 0; s < nsegs; s++ {
		if err := ctxErr(q.opts.Ctx); err != nil {
			*buf = ids
			putIDScratch(buf)
			return nil, st, q.t.abortErr(err)
		}
		ev := q.t.evalSegment(en, s, q.opts, &st, false)
		q.t.walkBlocks(s, ev, &st, nil, func(base int, mask uint64) bool {
			ids = core.AppendMaskIDs(ids, uint32(base), mask)
			return !q.limited || len(ids) < q.limit
		})
		releaseEval(&ev)
		if q.limited && len(ids) >= q.limit {
			break
		}
	}
	if q.limited && len(ids) > q.limit {
		ids = ids[:q.limit]
	}
	res := append([]uint32(nil), ids...)
	*buf = ids
	putIDScratch(buf)
	if !q.limited || len(res) < q.limit {
		res = q.deltaIDs(en, res, &st)
	}
	return res, st, nil
}

// idsParallel fans the segments across the worker pool and concatenates
// the per-segment id lists in segment order.
//
//imprintvet:locks held=mu.R
func (q *Query) idsParallel(en *execNode, nsegs int) ([]uint32, core.QueryStats, error) {
	var st core.QueryStats
	var res []uint32
	err := q.t.forEachSegment(q.opts.Ctx, nsegs, resolveParallelism(q.opts, nsegs),
		func(s int) segOut { return q.collectIDs(en, s) },
		func(s int, o segOut) bool {
			st.Add(o.st)
			ids := *o.ids
			take := len(ids)
			if q.limited && q.limit-len(res) < take {
				take = q.limit - len(res)
			}
			res = append(res, ids[:take]...)
			putIDScratch(o.ids)
			return !q.limited || len(res) < q.limit
		})
	if err != nil {
		return nil, st, q.t.abortErr(err)
	}
	if !q.limited || len(res) < q.limit {
		res = q.deltaIDs(en, res, &st)
	}
	return res, st, nil
}

// countSegment tallies one segment: exact candidate runs wholesale via
// the deleted-bitmap popcount (the count fast path), inexact runs one
// popcount per surviving block mask.
//
//imprintvet:locks held=mu.R
func (q *Query) countSegment(en *execNode, s int) segOut {
	var o segOut
	ev := q.t.evalSegment(en, s, q.opts, &o.st, false)
	limit := uint64(q.limit)
	q.t.walkBlocks(s, ev, &o.st,
		func(from, to int, exact bool) spanAction {
			if !exact {
				return spanPerBlock
			}
			live := q.t.liveRows(from, to)
			o.st.FastCountedRows += uint64(live)
			o.count += uint64(live)
			if q.limited && o.count >= limit {
				return spanStop
			}
			return spanDone
		},
		func(base int, mask uint64) bool {
			o.count += uint64(bits.OnesCount64(mask))
			return !q.limited || o.count < limit
		})
	releaseEval(&ev)
	return o
}

// Count executes the query and returns the number of qualifying rows
// (capped by Limit) without materializing ids. Exact candidate runs are
// counted wholesale — a popcount over the deleted bitmap replaces the
// block walk even while deletes are pending — with the shortcut's row
// tally reported in QueryStats.FastCountedRows (and previewed by
// Plan.FastCountRows); surviving blocks of inexact runs cost one
// selection-mask kernel call and one popcount each. Segments are
// counted in parallel and the tallies summed in segment order; with one
// worker the whole execution is allocation-free in steady state.
func (q *Query) Count() (uint64, core.QueryStats, error) {
	if q.t.shard != nil {
		return q.shardCount()
	}
	q.t.mu.RLock()
	defer q.t.mu.RUnlock()
	var st core.QueryStats
	if err := q.checkProjection(); err != nil {
		return 0, st, err
	}
	if q.limited && q.limit == 0 {
		return 0, st, nil
	}
	en, err := q.bind()
	if err != nil {
		return 0, st, err
	}
	limit := uint64(q.limit)
	nsegs := q.t.segCount()
	if resolveParallelism(q.opts, nsegs) == 1 {
		var n uint64
		for s := 0; s < nsegs; s++ {
			if err := ctxErr(q.opts.Ctx); err != nil {
				return 0, st, q.t.abortErr(err)
			}
			o := q.countSegment(en, s)
			st.Add(o.st)
			n += o.count
			if q.limited && n >= limit {
				break
			}
		}
		if !q.limited || n < limit {
			n = q.deltaCount(en, n, &st)
		}
		if q.limited && n > limit {
			n = limit
		}
		return n, st, nil
	}
	return q.countParallel(en, nsegs, limit)
}

// countParallel fans the segments across the worker pool, summing the
// tallies in segment order.
//
//imprintvet:locks held=mu.R
func (q *Query) countParallel(en *execNode, nsegs int, limit uint64) (uint64, core.QueryStats, error) {
	var st core.QueryStats
	var n uint64
	err := q.t.forEachSegment(q.opts.Ctx, nsegs, resolveParallelism(q.opts, nsegs),
		func(s int) segOut { return q.countSegment(en, s) },
		func(s int, o segOut) bool {
			st.Add(o.st)
			n += o.count
			return !q.limited || n < limit
		})
	if err != nil {
		return 0, st, q.t.abortErr(err)
	}
	if !q.limited || n < limit {
		n = q.deltaCount(en, n, &st)
	}
	if q.limited && n > limit {
		n = limit
	}
	return n, st, nil
}

// Rows executes the query as a streaming iterator over (id, Row) pairs:
// segment workers narrow each segment down to its qualifying ids, and
// the consumer materializes rows one at a time in segment order — only
// the projected columns of rows that survived the candidate-run check
// are ever fetched (late materialization), so breaking out early
// cancels segments not yet started. With OrderBy the qualifying ids
// are ranked first (per-segment bounded heaps when Limit caps the
// query) and rows stream in rank order instead of id order. With
// SelectOptions.ReuseRows every yielded Row shares one value buffer —
// see the option's contract.
//
// The table's read lock is held for the duration of the iteration, and
// sync.RWMutex is not reentrant: calling any write method (Update,
// Delete, Batch.Commit, Compact, Maintain, AddColumn, ...) from inside
// the loop body deadlocks, and nested reads can too once a writer is
// queued. To mutate matching rows, materialize the ids first (IDs) and
// write after the loop. Plan errors (unknown column, type-mismatched
// bound) yield no rows and are reported by Err.
func (q *Query) Rows() iter.Seq2[int, Row] {
	if q.t.shard != nil {
		return func(yield func(int, Row) bool) { q.shardRows(yield) }
	}
	return func(yield func(int, Row) bool) {
		q.t.mu.RLock()
		defer q.t.mu.RUnlock()
		q.err = nil
		names, cols, err := q.projection()
		if err != nil {
			q.err = err
			return
		}
		if q.limited && q.limit == 0 {
			return
		}
		var reused []any
		if q.opts.ReuseRows {
			reused = make([]any, len(cols))
		}
		// The delta watermark captured here serves both materialization
		// (ids at or past its base live in the buffer, not in segments)
		// and the trailing exact scan of the unordered path.
		view := q.t.deltaViewLocked()
		var dproj []int
		if view != nil {
			dproj = make([]int, len(names))
			for i, name := range names {
				dproj[i] = view.colIdx(name)
			}
		}
		materialize := func(id uint32) Row {
			vals := reused
			if vals == nil {
				vals = make([]any, len(cols))
			}
			if view != nil && int(id) >= view.base {
				drow := view.rows[int(id)-view.base]
				for i, pi := range dproj {
					vals[i] = drow[pi]
				}
			} else {
				for i, c := range cols {
					vals[i] = c.valueAt(int(id))
				}
			}
			return Row{id: int(id), names: names, vals: vals}
		}
		if q.order != nil {
			ids, _, err := q.orderedIDsLocked()
			if err != nil {
				q.err = err
				return
			}
			for _, id := range ids {
				if !yield(int(id), materialize(id)) {
					return
				}
			}
			return
		}
		en, err := q.bind()
		if err != nil {
			q.err = err
			return
		}
		emitted := 0
		stopped := false
		nsegs := q.t.segCount()
		if err := q.t.forEachSegment(q.opts.Ctx, nsegs, resolveParallelism(q.opts, nsegs),
			func(s int) segOut { return q.collectIDs(en, s) },
			func(s int, o segOut) bool {
				defer putIDScratch(o.ids)
				for _, id := range *o.ids {
					if !yield(int(id), materialize(id)) {
						stopped = true
						return false
					}
					emitted++
					if q.limited && emitted >= q.limit {
						stopped = true
						return false
					}
				}
				return true
			}); err != nil {
			q.err = q.t.abortErr(err)
			return
		}
		if stopped || view == nil {
			return
		}
		match := view.matcher(en)
		var dst core.QueryStats
		view.scan(match, &dst, func(id int, _ []any) bool {
			if !yield(id, materialize(uint32(id))) {
				return false
			}
			emitted++
			return !q.limited || emitted < q.limit
		})
	}
}

// Err reports the plan error of the last Rows iteration, if any. IDs,
// Count and Explain return their errors directly.
func (q *Query) Err() error { return q.err }
