package table

import (
	"fmt"
	"iter"

	"repro/internal/core"
)

// Query is a lazy selection over one table, built by Table.Select. It
// records a projection, a predicate tree, and a row limit; nothing runs
// until one of the executors — Rows, IDs, Count, Explain — is called,
// and each execution sees a consistent snapshot of the table (readers
// share the table lock, writers exclude them).
//
// A Query value is reusable (each executor re-runs the plan) but not
// safe for concurrent use; build one per goroutine.
type Query struct {
	t       *Table
	cols    []string
	pred    Predicate
	limit   int
	limited bool // Limit was called; limit 0 then means "no rows"
	opts    SelectOptions
	err     error // sticky error from the last Rows iteration
}

// Select starts a lazy query projecting the named columns; no columns
// means every column, in definition order. Column names are validated
// at execution time.
func (t *Table) Select(cols ...string) *Query {
	return &Query{t: t, cols: cols}
}

// Where filters the query by a predicate tree. Multiple Where calls
// AND their predicates together.
func (q *Query) Where(p Predicate) *Query {
	switch {
	case p == nil:
	case q.pred == nil:
		q.pred = p
	default:
		q.pred = And(q.pred, p)
	}
	return q
}

// Limit caps the number of result rows. Limit(0) — or a negative n,
// as computed pagination remainders can produce — selects no rows and
// short-circuits execution before the predicate is evaluated (only the
// projection is still validated); a query that never calls Limit is
// unbounded. Count is capped too, so "exists" probes can use Limit(1).
func (q *Query) Limit(n int) *Query {
	if n < 0 {
		n = 0
	}
	q.limit = n
	q.limited = true
	return q
}

// Options tunes evaluation (e.g. the scan-vs-probe threshold).
func (q *Query) Options(o SelectOptions) *Query {
	q.opts = o
	return q
}

// plan evaluates the predicate tree to candidate runs; callers hold the
// table's read lock. A nil predicate matches every row exactly.
func (q *Query) plan(st *core.QueryStats) (evaluated, error) {
	if q.pred == nil {
		runs := q.t.matchAll()
		node := &PlanNode{Op: "all", Pred: "true"}
		node.setRuns(runs)
		return evaluated{runs: runs, plan: node}, nil
	}
	return q.t.eval(q.pred, q.opts, st)
}

// projection resolves the projected column names; callers hold the read
// lock. An empty projection selects every column in definition order.
func (q *Query) projection() ([]string, []anyColumn, error) {
	// Copy in both branches: names escapes into Row values, and
	// aliasing t.order (or the reusable query's own cols) would let
	// callers mutate query or table state through Row.Columns.
	names := append([]string(nil), q.cols...)
	if len(names) == 0 {
		names = append(names, q.t.order...)
	}
	cols := make([]anyColumn, len(names))
	for i, name := range names {
		c, ok := q.t.cols[name]
		if !ok {
			return nil, nil, fmt.Errorf("table %s: no column %q", q.t.name, name)
		}
		cols[i] = c
	}
	return names, cols, nil
}

// checkProjection validates the projected names without materializing
// the projection (IDs and Count never fetch values); callers hold the
// read lock.
func (q *Query) checkProjection() error {
	for _, name := range q.cols {
		if _, ok := q.t.cols[name]; !ok {
			return fmt.Errorf("table %s: no column %q", q.t.name, name)
		}
	}
	return nil
}

// IDs executes the query and returns the ascending ids of qualifying,
// non-deleted rows, with the evaluation stats.
func (q *Query) IDs() ([]uint32, core.QueryStats, error) {
	q.t.mu.RLock()
	defer q.t.mu.RUnlock()
	var st core.QueryStats
	if err := q.checkProjection(); err != nil {
		return nil, st, err
	}
	if q.limited && q.limit == 0 {
		return nil, st, nil
	}
	ev, err := q.plan(&st)
	if err != nil {
		return nil, st, err
	}
	var res []uint32
	q.t.scanRuns(ev, &st, nil, func(id int) bool {
		res = append(res, uint32(id))
		return !q.limited || len(res) < q.limit
	})
	return res, st, nil
}

// Count executes the query and returns the number of qualifying rows
// (capped by Limit) without materializing ids. Exact candidate runs are
// counted wholesale when no deletes are pending.
func (q *Query) Count() (uint64, core.QueryStats, error) {
	q.t.mu.RLock()
	defer q.t.mu.RUnlock()
	var st core.QueryStats
	if err := q.checkProjection(); err != nil {
		return 0, st, err
	}
	if q.limited && q.limit == 0 {
		return 0, st, nil
	}
	ev, err := q.plan(&st)
	if err != nil {
		return 0, st, err
	}
	limit := uint64(q.limit)
	var n uint64
	q.t.scanRuns(ev, &st, func(from, to int) bool {
		n += uint64(to - from)
		return !q.limited || n < limit
	}, func(id int) bool {
		n++
		return !q.limited || n < limit
	})
	if q.limited && n > limit {
		n = limit
	}
	return n, st, nil
}

// Rows executes the query as a streaming iterator over (id, Row) pairs:
// qualifying rows are materialized one at a time — only the projected
// columns of rows that survive the candidate-run check are ever fetched
// (late materialization end to end), so breaking out early does no
// wasted work and large results never build an id slice.
//
// The table's read lock is held for the duration of the iteration, and
// sync.RWMutex is not reentrant: calling any write method (Update,
// Delete, Batch.Commit, Compact, Maintain, AddColumn, ...) from inside
// the loop body deadlocks, and nested reads can too once a writer is
// queued. To mutate matching rows, materialize the ids first (IDs) and
// write after the loop. Plan errors (unknown column, type-mismatched
// bound) yield no rows and are reported by Err.
func (q *Query) Rows() iter.Seq2[int, Row] {
	return func(yield func(int, Row) bool) {
		q.t.mu.RLock()
		defer q.t.mu.RUnlock()
		q.err = nil
		var st core.QueryStats
		names, cols, err := q.projection()
		if err != nil {
			q.err = err
			return
		}
		if q.limited && q.limit == 0 {
			return
		}
		ev, err := q.plan(&st)
		if err != nil {
			q.err = err
			return
		}
		emitted := 0
		q.t.scanRuns(ev, &st, nil, func(id int) bool {
			vals := make([]any, len(cols))
			for i, c := range cols {
				vals[i] = c.valueAt(id)
			}
			if !yield(id, Row{id: id, names: names, vals: vals}) {
				return false
			}
			emitted++
			return !q.limited || emitted < q.limit
		})
	}
}

// Err reports the plan error of the last Rows iteration, if any. IDs,
// Count and Explain return their errors directly.
func (q *Query) Err() error { return q.err }

// scanRuns is the single traversal shared by IDs, Count and Rows: it
// walks the candidate runs, skips deleted rows, applies the residual
// check of non-exact runs (counting comparisons into st), and hands
// each qualifying row to visit. Exact runs with no deletes pending are
// offered wholesale to visitRun when it is non-nil (Count's fast
// path); rows of such runs are otherwise visited individually. Either
// callback returns false to stop. Callers hold the read lock.
func (t *Table) scanRuns(ev evaluated, st *core.QueryStats, visitRun func(from, to int) bool, visit func(id int) bool) {
	for _, r := range ev.runs {
		from, to := t.blockSpan(r)
		if visitRun != nil && r.Exact && t.ndel == 0 {
			if !visitRun(from, to) {
				return
			}
			continue
		}
		for id := from; id < to; id++ {
			if t.deleted != nil && t.deleted.Get(id) {
				continue
			}
			if !r.Exact && ev.check != nil {
				st.Comparisons++
				if !ev.check(uint32(id)) {
					continue
				}
			}
			if !visit(id) {
				return
			}
		}
	}
}

// blockSpan converts a candidate run to its [from, to) row interval;
// callers hold the read lock.
func (t *Table) blockSpan(r core.CandidateRun) (from, to int) {
	from = int(r.Start) * BlockRows
	to = (int(r.Start) + int(r.Count)) * BlockRows
	if to > t.rows {
		to = t.rows
	}
	return from, to
}
