package table

import (
	"runtime"
	"time"

	"repro/internal/column"
	"repro/internal/core"
	"repro/internal/zonemap"
)

// Background sealing (the LSM-style write path's second stage): full
// segment-sized chunks are cut off the delta store's front, their value
// slabs, summaries, dictionaries and indexes built OUTSIDE the table
// lock from an immutable prefix snapshot, and the finished segments
// installed atomically under the write lock — readers only ever see
// either the rows in the delta or the same rows in sealed segments,
// never both and never neither. Installation is optimistic: the store's
// (base, generation) identity is re-checked under the lock, and a build
// raced by an update or flush is discarded (IngestStats.SealRetries),
// never installed.

// sealLoop is the background worker started by EnableDeltaIngest with
// AutoSeal: it wakes on commit kicks, seals full chunks, runs one
// merge-compactor pass, and folds deletes with a full compaction when
// the deleted fraction crosses the configured threshold.
func (t *Table) sealLoop(d *deltaState) {
	defer close(d.done)
	for {
		select {
		case <-d.stop:
			return
		case <-d.kick:
		}
		t.sealFullChunks(d)
		t.mergePass(d)
		t.maybeAutoCompact(d)
	}
}

// Conflict backoff: consecutive discarded builds grow an exponential
// retry delay (reset by the next successful install), so a sustained
// update storm does not burn CPU rebuilding segments it will discard.
const (
	sealBackoffBase = time.Millisecond
	sealBackoffCap  = 50 * time.Millisecond
)

// sealBackoffFor maps a conflict streak to its capped retry delay.
func sealBackoffFor(streak uint32) time.Duration {
	wait := sealBackoffBase << min(streak-1, 8)
	return min(wait, sealBackoffCap)
}

// sealFullChunks seals every full segment-sized chunk currently
// buffered and returns the rows moved. Install conflicts (concurrent
// updates keep bumping the store generation) back off exponentially —
// capped, and reset by the next successful optimistic install — and
// every fourth consecutive conflict degrades to folding full chunks
// under the lock so the pass always terminates.
func (t *Table) sealFullChunks(d *deltaState) int {
	d.sealMu.Lock()
	defer d.sealMu.Unlock()
	sealed := 0
	for {
		n, retry := t.sealChunk(d)
		sealed += n
		if retry {
			d.sealRetries.Add(1)
			streak := d.conflictStreak.Add(1)
			if streak%4 == 0 {
				t.mu.Lock()
				if full := (t.delta.store.Len() / t.segRows) * t.segRows; full > 0 {
					t.flushDeltaLocked(full)
					sealed += full
				}
				t.mu.Unlock()
			}
			wait := sealBackoffFor(streak)
			d.backoffNanos.Store(int64(wait))
			select {
			case <-d.stop:
				return sealed
			case <-time.After(wait):
			}
			continue
		}
		if n > 0 {
			// A clean optimistic install: the storm (if any) has passed.
			d.conflictStreak.Store(0)
			d.backoffNanos.Store(0)
		}
		if n == 0 {
			return sealed
		}
	}
}

// sealChunk builds and installs up to maxSealSegs full segments from
// the delta's front. It returns the rows installed and whether the
// caller should retry because a concurrent mutation invalidated the
// off-lock build.
func (t *Table) sealChunk(d *deltaState) (int, bool) {
	// Fewer buffered rows than a segment cannot yield a seal even after
	// topping the tail up — skip without touching the table lock, so
	// per-commit kicks stay free of exclusive acquisitions.
	if d.store.Len() < t.segRows {
		return 0, false
	}
	// Whole segments only install on a full columnar tail; top a
	// partial tail (left by an earlier flush) up from the delta first.
	t.mu.Lock()
	if rem := t.rows % t.segRows; rem != 0 {
		fill := t.segRows - rem
		if n := d.store.Len(); n < fill {
			fill = n
		}
		if fill > 0 {
			t.flushDeltaLocked(fill)
		}
	}
	order := append([]string(nil), t.order...)
	cols := make([]anyColumn, len(order))
	for ci, name := range order {
		cols[ci] = t.cols[name]
	}
	t.mu.Unlock()

	base, rows, gen := d.store.CopyPrefix(d.maxSealSegs * t.segRows)
	nsegs := len(rows) / t.segRows
	if nsegs == 0 {
		return 0, false
	}
	n := nsegs * t.segRows
	rows = rows[:n]

	// Build off the lock: the prefix snapshot's inner rows are
	// immutable, so summaries, dictionaries and imprints can be
	// computed while readers and writers proceed. Yield between
	// segment builds so reader goroutines interleave promptly even at
	// small GOMAXPROCS.
	built := make([][]any, len(cols))
	for ci, col := range cols {
		segsBuilt := make([]any, nsegs)
		for k := 0; k < nsegs; k++ {
			segsBuilt[k] = col.buildSealed(rows[k*t.segRows:(k+1)*t.segRows], ci)
			runtime.Gosched()
		}
		built[ci] = segsBuilt
	}

	// Install atomically iff nothing invalidated the snapshot: same
	// store identity (no update/flush/layout change) and the prefix is
	// still buffered. base == t.rows is implied by an unchanged
	// generation; asserted cheaply all the same.
	t.mu.Lock()
	ok := d.store.Matches(base, gen, n) && base == t.rows
	if ok {
		for ci, col := range cols {
			for _, seg := range built[ci] {
				col.installSealed(seg)
			}
		}
		t.rows += n
		t.growDeletedTo(t.rows)
		d.store.Truncate(n)
		d.seals.Add(1)
		d.sealedSegs.Add(uint64(nsegs))
		d.sealedRows.Add(uint64(n))
	}
	t.mu.Unlock()
	if !ok {
		return 0, true
	}
	return n, false
}

// mergePass is the merge-compactor: it rewrites sealed segments whose
// summary was widened by updates or whose index saturated, restoring
// exact summaries (and with them aggregate pushdown and tight pruning)
// one segment per lock acquisition so readers interleave.
func (t *Table) mergePass(d *deltaState) {
	for {
		select {
		case <-d.stop:
			return
		default:
		}
		t.mu.Lock()
		merged := false
		for _, name := range t.order {
			if t.cols[name].mergeOne(d.mergeSat) {
				merged = true
				d.merges.Add(1)
				break
			}
		}
		t.mu.Unlock()
		if !merged {
			return
		}
	}
}

// maybeAutoCompact folds the delete bitmap with a full compaction when
// the deleted fraction crosses the configured threshold.
func (t *Table) maybeAutoCompact(d *deltaState) {
	if d.compactFrac <= 0 {
		return
	}
	t.mu.RLock()
	total := t.totalRowsLocked()
	trigger := total > 0 && float64(t.ndel)/float64(total) >= d.compactFrac
	t.mu.RUnlock()
	if trigger && t.Compact() > 0 {
		d.compactions.Add(1)
	}
}

// ---- per-column seal/merge hooks ----

func (c *colState[V]) buildSealed(rows [][]any, ci int) any {
	vals := make([]V, len(rows))
	for r, row := range rows {
		vals[r] = row[ci].(V)
	}
	s := &segment[V]{vals: vals}
	s.min, s.max, _ = summarize(vals)
	switch c.mode {
	case Imprints:
		s.ix = core.Build(vals, c.vpcOpts)
	case Zonemap:
		s.zm = zonemap.Build(vals, zonemap.Options{})
	}
	return s
}

//imprintvet:locks held=mu
func (c *colState[V]) installSealed(built any) {
	c.segs = append(c.segs, built.(*segment[V]))
}

//imprintvet:locks held=mu.R
func (c *colState[V]) mergeBacklog(satLimit float64) int {
	n := 0
	for _, s := range c.segs {
		if c.needsMerge(s, satLimit) {
			n++
		}
	}
	return n
}

//imprintvet:locks held=mu
func (c *colState[V]) mergeOne(satLimit float64) bool {
	for _, s := range c.segs {
		if c.needsMerge(s, satLimit) {
			s.rebuild(c.mode, c.vpcOpts)
			return true
		}
	}
	return false
}

func (c *colState[V]) needsMerge(s *segment[V], satLimit float64) bool {
	return s.sumWide || (s.ix != nil && s.ix.NeedsRebuild(satLimit, 0, 0))
}

func (c *strColState) buildSealed(rows [][]any, ci int) any {
	vals := make([]string, len(rows))
	for r, row := range rows {
		vals[r] = row[ci].(string)
	}
	// The generation is assigned at install time (it needs the write
	// lock); plans cannot have cached a translation for an uninstalled
	// segment anyway.
	s := &strSegment{dict: column.EncodeStrings(c.name, vals)}
	if c.mode == Imprints {
		s.ix = core.Build(s.codes(), c.vpcOpts)
	}
	return s
}

//imprintvet:locks held=mu
func (c *strColState) installSealed(built any) {
	s := built.(*strSegment)
	s.gen = c.nextGen()
	c.segs = append(c.segs, s)
}

//imprintvet:locks held=mu.R
func (c *strColState) mergeBacklog(satLimit float64) int {
	n := 0
	for _, s := range c.segs {
		if s.ix != nil && s.ix.NeedsRebuild(satLimit, 0, 0) {
			n++
		}
	}
	return n
}

//imprintvet:locks held=mu
func (c *strColState) mergeOne(satLimit float64) bool {
	for _, s := range c.segs {
		if s.ix != nil && s.ix.NeedsRebuild(satLimit, 0, 0) {
			c.rebuildSegmentIndex(s)
			return true
		}
	}
	return false
}
