package table

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/core"
)

// Sharded query execution (see shard.go for the storage layout): an
// executor on a sharded table read-locks the parent (schema) and every
// child shard in ascending order, binds the predicate once per shard,
// captures each shard's delta watermark exactly once, and fans out
// shard-first over (shard, local segment) units in ascending
// global-segment order on the same bounded worker pool unsharded
// executions use. The per-unit work is the unchanged single-shard
// machinery — vectorized block walk, per-segment pruning, bounded
// top-k heaps — with row ids shifted from the child's local id space
// to the global round-robin id space. The merge consumes units in
// global-segment order and folds each shard's delta partials
// afterwards in shard order, so Count/IDs/Rows/Aggregate/GroupBy/
// OrderBy/Explain are deterministic at every parallelism level and,
// on densely-filled tables, byte-identical to the unsharded layout.

// shardUnit is one (shard, local segment) work item of a sharded
// fan-out; units are processed in ascending global-segment order.
type shardUnit struct {
	c    int // owning shard
	lseg int // shard-local segment index
	gseg int // global segment: lseg*nshards + c
}

// shardExec is one execution's bound state across the shards: a query
// clone and execution tree per shard, the delta watermark captured
// exactly once per shard (every merge path must observe one capture),
// and the ascending unit list. Valid only while the caller holds the
// parent read lock and every shard's read lock.
type shardExec struct {
	sh    *shardState
	kids  []*Query
	ens   []*execNode
	views []*deltaView
	units []shardUnit
}

// shardBind resolves one execution against every shard: per-shard
// query clones (prepared executions pick up the statement's per-shard
// compilation), bound execution trees, delta watermarks, and the unit
// list. Callers hold the parent read lock and every shard's read lock.
//
//imprintvet:locks held=mu.R,kid.R
func (q *Query) shardBind() (*shardExec, error) {
	sh := q.t.shard
	se := &shardExec{
		sh:    sh,
		kids:  make([]*Query, sh.nshards),
		ens:   make([]*execNode, sh.nshards),
		views: make([]*deltaView, sh.nshards),
	}
	for c, kid := range sh.kids {
		kq := &Query{
			t: kid, cols: q.cols, pred: q.pred, binds: q.binds,
			bindErr: q.bindErr, limit: q.limit, limited: q.limited,
			order: q.order, opts: q.opts,
		}
		if q.prep != nil {
			kq.prep = q.prep.kids[c]
		}
		en, err := kq.bind()
		if err != nil {
			return nil, err
		}
		se.kids[c] = kq
		se.ens[c] = en
		se.views[c] = kid.deltaViewLocked()
		for lseg := 0; lseg < kid.segCount(); lseg++ {
			se.units = append(se.units, shardUnit{c: c, lseg: lseg, gseg: lseg*sh.nshards + c})
		}
	}
	sort.Slice(se.units, func(i, j int) bool { return se.units[i].gseg < se.units[j].gseg })
	return se, nil
}

// forEachUnit fans the units across the bounded worker pool (the
// exact forEachSegment machinery — it touches no table state) and
// consumes them in ascending global-segment order.
func (se *shardExec) forEachUnit(q *Query, work func(i int) segOut, consume func(i int, o segOut) bool) error {
	n := len(se.units)
	return q.t.forEachSegment(q.opts.Ctx, n, resolveParallelism(q.opts, n), work, consume)
}

// gidShift is the offset that rebases unit u's kid-global row ids
// (local segment lseg) into the parent's global id space (segment
// gseg).
func (se *shardExec) gidShift(u shardUnit) uint32 {
	return uint32((u.gseg - u.lseg) * se.sh.segRows)
}

// shardCheckProjection validates the projected names against the
// shards' shared schema; callers hold shard 0's read lock.
func (q *Query) shardCheckProjection() error {
	kid := q.t.shard.kids[0]
	for _, name := range q.cols {
		if _, ok := kid.cols[name]; !ok {
			return fmt.Errorf("table %s: no column %q", q.t.name, name)
		}
	}
	return nil
}

// deltaGids collects the qualifying buffered delta rows of every shard
// as ascending global ids. Unlike the unsharded layout — where delta
// ids all follow sealed ids — one shard's delta rows can precede
// another shard's sealed segments in the global id space, so sharded
// merges interleave delta ids rather than appending them.
//
//imprintvet:locks held=kid.R
func (se *shardExec) deltaGids(st *core.QueryStats) []uint32 {
	var out []uint32
	for c, view := range se.views {
		if view == nil {
			continue
		}
		match := view.matcher(se.ens[c])
		view.scan(match, st, func(id int, _ []any) bool {
			out = append(out, uint32(se.sh.gidOf(c, id)))
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mergeDeltaIDs merges the shards' qualifying delta ids into the
// sealed result ids (both ascending) and applies the limit. Sealed
// ids dropped by an early limit stop all exceed every kept id, so
// merge-then-truncate returns exactly the first Limit qualifying ids.
//
//imprintvet:locks held=kid.R
func (se *shardExec) mergeDeltaIDs(q *Query, res []uint32, st *core.QueryStats) []uint32 {
	dg := se.deltaGids(st)
	switch {
	case len(dg) == 0:
	case len(res) == 0 || dg[0] > res[len(res)-1]:
		res = append(res, dg...)
	default:
		merged := make([]uint32, 0, len(res)+len(dg))
		i, j := 0, 0
		for i < len(res) && j < len(dg) {
			if res[i] <= dg[j] {
				merged = append(merged, res[i])
				i++
			} else {
				merged = append(merged, dg[j])
				j++
			}
		}
		merged = append(merged, res[i:]...)
		merged = append(merged, dg[j:]...)
		res = merged
	}
	if q.limited && len(res) > q.limit {
		res = res[:q.limit]
	}
	return res
}

// shardIDs is IDs over a sharded table: per-unit id collection with
// the ids rebased to the global id space, merged in global-segment
// order, delta ids interleaved by id.
func (q *Query) shardIDs() ([]uint32, core.QueryStats, error) {
	q.t.mu.RLock()
	defer q.t.mu.RUnlock()
	q.t.shardRLock()
	defer q.t.shardRUnlock()
	var st core.QueryStats
	if err := q.shardCheckProjection(); err != nil {
		return nil, st, err
	}
	if q.order != nil {
		return q.shardOrderedIDs(nil)
	}
	if q.limited && q.limit == 0 {
		return nil, st, nil
	}
	se, err := q.shardBind()
	if err != nil {
		return nil, st, err
	}
	var res []uint32
	err = se.forEachUnit(q,
		func(i int) segOut {
			u := se.units[i]
			o := se.kids[u.c].collectIDs(se.ens[u.c], u.lseg)
			if shift := se.gidShift(u); shift != 0 {
				ids := *o.ids
				for k := range ids {
					ids[k] += shift
				}
			}
			return o
		},
		func(i int, o segOut) bool {
			st.Add(o.st)
			ids := *o.ids
			take := len(ids)
			if q.limited && q.limit-len(res) < take {
				take = q.limit - len(res)
			}
			res = append(res, ids[:take]...)
			putIDScratch(o.ids)
			return !q.limited || len(res) < q.limit
		})
	if err != nil {
		return nil, st, q.t.abortErr(err)
	}
	if !q.limited || len(res) < q.limit {
		res = se.mergeDeltaIDs(q, res, &st)
	}
	return res, st, nil
}

// shardCount is Count over a sharded table: per-unit tallies summed in
// global-segment order, each shard's delta rows counted afterwards.
func (q *Query) shardCount() (uint64, core.QueryStats, error) {
	q.t.mu.RLock()
	defer q.t.mu.RUnlock()
	q.t.shardRLock()
	defer q.t.shardRUnlock()
	var st core.QueryStats
	if err := q.shardCheckProjection(); err != nil {
		return 0, st, err
	}
	if q.limited && q.limit == 0 {
		return 0, st, nil
	}
	se, err := q.shardBind()
	if err != nil {
		return 0, st, err
	}
	limit := uint64(q.limit)
	var n uint64
	err = se.forEachUnit(q,
		func(i int) segOut {
			u := se.units[i]
			return se.kids[u.c].countSegment(se.ens[u.c], u.lseg)
		},
		func(i int, o segOut) bool {
			st.Add(o.st)
			n += o.count
			return !q.limited || n < limit
		})
	if err != nil {
		return 0, st, q.t.abortErr(err)
	}
	for c, view := range se.views {
		if q.limited && n >= limit {
			break
		}
		if view == nil {
			continue
		}
		match := view.matcher(se.ens[c])
		view.scan(match, &st, func(int, []any) bool {
			n++
			return !q.limited || n < limit
		})
	}
	if q.limited && n > limit {
		n = limit
	}
	return n, st, nil
}

// shardRows is the Rows iterator over a sharded table: a streaming
// merge that yields sealed ids in ascending global order, interleaving
// each pending delta id before the first sealed id that exceeds it.
// Rows materialize from the owning shard (sealed slab or delta
// buffer), and every shard's read lock is held for the duration of
// the iteration — the reentrancy caveats of Rows apply to all shards.
func (q *Query) shardRows(yield func(int, Row) bool) {
	q.t.mu.RLock()
	defer q.t.mu.RUnlock()
	q.t.shardRLock()
	defer q.t.shardRUnlock()
	q.err = nil
	sh := q.t.shard
	names := append([]string(nil), q.cols...)
	if len(names) == 0 {
		names = append(names, q.t.order...)
	}
	kcols := make([][]anyColumn, sh.nshards)
	for c, kid := range sh.kids {
		kcols[c] = make([]anyColumn, len(names))
		for i, name := range names {
			col, ok := kid.cols[name]
			if !ok {
				q.err = fmt.Errorf("table %s: no column %q", q.t.name, name)
				return
			}
			kcols[c][i] = col
		}
	}
	if q.limited && q.limit == 0 {
		return
	}
	se, err := q.shardBind()
	if err != nil {
		q.err = err
		return
	}
	var reused []any
	if q.opts.ReuseRows {
		reused = make([]any, len(names))
	}
	dproj := make([][]int, sh.nshards)
	for c, view := range se.views {
		if view == nil {
			continue
		}
		dproj[c] = make([]int, len(names))
		for i, name := range names {
			dproj[c][i] = view.colIdx(name)
		}
	}
	materialize := func(gid uint32) Row {
		c, lid := sh.decode(int(gid))
		vals := reused
		if vals == nil {
			vals = make([]any, len(names))
		}
		if view := se.views[c]; view != nil && lid >= view.base {
			drow := view.rows[lid-view.base]
			for i, pi := range dproj[c] {
				vals[i] = drow[pi]
			}
		} else {
			for i, col := range kcols[c] {
				vals[i] = col.valueAt(lid)
			}
		}
		return Row{id: int(gid), names: names, vals: vals}
	}
	if q.order != nil {
		ids, _, err := q.shardOrderedIDs(se)
		if err != nil {
			q.err = err
			return
		}
		for _, id := range ids {
			if !yield(int(id), materialize(id)) {
				return
			}
		}
		return
	}
	var dst core.QueryStats
	dg := se.deltaGids(&dst)
	di := 0
	emitted := 0
	emit := func(gid uint32) bool {
		if !yield(int(gid), materialize(gid)) {
			return false
		}
		emitted++
		return !q.limited || emitted < q.limit
	}
	if err := se.forEachUnit(q,
		func(i int) segOut {
			u := se.units[i]
			o := se.kids[u.c].collectIDs(se.ens[u.c], u.lseg)
			if shift := se.gidShift(u); shift != 0 {
				ids := *o.ids
				for k := range ids {
					ids[k] += shift
				}
			}
			return o
		},
		func(i int, o segOut) bool {
			defer putIDScratch(o.ids)
			for _, gid := range *o.ids {
				for di < len(dg) && dg[di] < gid {
					if !emit(dg[di]) {
						return false
					}
					di++
				}
				if !emit(gid) {
					return false
				}
			}
			return true
		}); err != nil {
		q.err = q.t.abortErr(err)
		return
	}
	if q.limited && emitted >= q.limit {
		return
	}
	for ; di < len(dg); di++ {
		if !emit(dg[di]) {
			return
		}
	}
}

// shardOrderedIDs executes an OrderBy query over a sharded table:
// per-unit bounded heaps pushing global ids, one exact delta partial
// per shard, all ranked by the typed merge. Callers hold the parent
// and every shard's read lock; se may be nil (bound here after the
// ordering column is validated, preserving error precedence).
//
//imprintvet:locks held=mu.R,kid.R
func (q *Query) shardOrderedIDs(se *shardExec) ([]uint32, core.QueryStats, error) {
	var st core.QueryStats
	sh := q.t.shard
	cols := make([]anyColumn, sh.nshards)
	for c, kid := range sh.kids {
		col, ok := kid.cols[q.order.col]
		if !ok {
			return nil, st, fmt.Errorf("table %s: no column %q", q.t.name, q.order.col)
		}
		cols[c] = col
	}
	if q.limited && q.limit == 0 {
		return nil, st, nil
	}
	if se == nil {
		var err error
		if se, err = q.shardBind(); err != nil {
			return nil, st, err
		}
	}
	k := 0
	if q.limited {
		k = q.limit
	}
	desc := q.order.desc
	parts := make([]orderPartial, len(se.units))
	err := se.forEachUnit(q,
		func(i int) segOut {
			u := se.units[i]
			kid := sh.kids[u.c]
			var o segOut
			ev := kid.evalSegment(se.ens[u.c], u.lseg, q.opts, &o.st, false)
			acc := cols[u.c].topkAcc(u.lseg, desc, k)
			gbase := uint32(u.gseg * q.t.segRows)
			kid.aggWalk(u.lseg, ev, &o.st,
				func(from, to int) {
					for local := from; local < to; local++ {
						acc.push(uint32(local), gbase+uint32(local))
					}
				},
				func(bb int, mask uint64) {
					for mask != 0 {
						i := bits.TrailingZeros64(mask)
						mask &= mask - 1
						local := uint32(bb + i)
						acc.push(local, gbase+local)
					}
				})
			releaseEval(&ev)
			o.ord = acc.partial()
			return o
		},
		func(i int, o segOut) bool {
			st.Add(o.st)
			parts[i] = o.ord
			return true
		})
	if err != nil {
		return nil, st, q.t.abortErr(err)
	}
	for c, view := range se.views {
		if view == nil {
			continue
		}
		oci := view.colIdx(q.order.col)
		match := view.matcher(se.ens[c])
		var vals []any
		var ids []uint32
		view.scan(match, &st, func(id int, row []any) bool {
			vals = append(vals, row[oci])
			ids = append(ids, uint32(sh.gidOf(c, id)))
			return true
		})
		if p := cols[c].deltaOrd(vals, ids); p != nil {
			parts = append(parts, p)
		}
	}
	return cols[0].topkMerge(parts, desc, k), st, nil
}
