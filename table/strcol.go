package table

import (
	"fmt"

	"repro/internal/column"
	"repro/internal/core"
)

// strColState is the per-column state of a string attribute: the values
// live dictionary-encoded (lexicographically ordered int32 codes, see
// column.StringDict), and the secondary index is a column imprint over
// the code column — exactly how the paper's "char"/"str" columns
// (Airtraffic, Cnet, TPC-H) are indexed. String predicates translate to
// code intervals, so StrRange and friends compose in the same And/Or/
// AndNot trees as numeric leaves.
type strColState struct {
	name    string
	dict    *column.StringDict
	ix      *core.Index[int32]
	mode    IndexMode // Imprints or NoIndex
	vpcOpts core.Options
}

// AddStringColumn defines a new string column, dictionary-encoding vals
// and (unless mode is NoIndex) building a code imprint. Like AddColumn,
// the values are copied on ingest. Zonemap mode is not supported for
// strings: dictionary codes are dense, which makes the imprint strictly
// better.
func (t *Table) AddStringColumn(name string, vals []string, mode IndexMode, opts core.Options) error {
	if mode == Zonemap {
		return fmt.Errorf("table %s: column %q: zonemap mode is not supported for string columns", t.name, name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkNewColumn(name, len(vals), opts); err != nil {
		return err
	}
	cs := &strColState{name: name, dict: column.EncodeStrings(name, vals), mode: mode, vpcOpts: opts}
	cs.rebuild()
	t.installColumn(name, cs, len(vals))
	return nil
}

// StringColumn materializes the decoded values of a string column. The
// returned slice is freshly allocated and safe to keep.
func (t *Table) StringColumn(name string) ([]string, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cs, err := strCol(t, name)
	if err != nil {
		return nil, err
	}
	return cs.decodeAll(), nil
}

// UpdateString changes one string value in place. When the new value is
// already in the dictionary the covering imprint is widened (Section
// 4.2); a novel string forces a re-encode and index rebuild, since code
// order must stay aligned with string order.
func (t *Table) UpdateString(name string, id int, v string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	cs, err := strCol(t, name)
	if err != nil {
		return err
	}
	if id < 0 || id >= cs.colRows() {
		return fmt.Errorf("table %s: row %d out of range", t.name, id)
	}
	if code, ok := cs.dict.Code(v); ok {
		cs.codes()[id] = code
		if cs.ix != nil {
			cs.ix.MarkUpdated(id, code)
		}
		return nil
	}
	all := cs.decodeAll()
	all[id] = v
	cs.reencode(all)
	t.gen++ // the dictionary changed shape; compiled plans must re-translate
	return nil
}

func strCol(t *Table, name string) (*strColState, error) {
	c, ok := t.cols[name]
	if !ok {
		return nil, fmt.Errorf("table %s: no column %q", t.name, name)
	}
	cs, ok := c.(*strColState)
	if !ok {
		return nil, fmt.Errorf("table %s: column %q holds %s, not string",
			t.name, name, c.colType())
	}
	return cs, nil
}

// ---- anyColumn implementation ----

func (c *strColState) codes() []int32 { return c.dict.Codes().Values() }

func (c *strColState) colName() string  { return c.name }
func (c *strColState) colRows() int     { return c.dict.Codes().Len() }
func (c *strColState) colType() string  { return "string" }
func (c *strColState) sizeBytes() int64 { return c.dict.SizeBytes() }

func (c *strColState) indexBytes() int64 {
	if c.ix == nil {
		return 0
	}
	return c.ix.SizeBytes()
}

func (c *strColState) indexKind() string {
	if c.ix != nil {
		return "imprints"
	}
	return "scan"
}

func (c *strColState) rebuild() {
	c.ix = nil // as in colState.rebuild: never keep a stale index
	if c.mode != Imprints || c.colRows() == 0 {
		return
	}
	c.ix = core.Build(c.codes(), c.vpcOpts)
}

func (c *strColState) needsRebuild(satLimit float64) bool {
	return c.ix != nil && c.ix.NeedsRebuild(satLimit, 0, 0)
}

func (c *strColState) valueAt(id int) any { return c.dict.Symbol(c.codes()[id]) }

func (c *strColState) decodeAll() []string {
	codes := c.codes()
	out := make([]string, len(codes))
	for i, code := range codes {
		out[i] = c.dict.Symbol(code)
	}
	return out
}

// reencode replaces the dictionary with a fresh encoding of vals and
// rebuilds the index (codes must stay ordered like the strings).
func (c *strColState) reencode(vals []string) {
	c.dict = column.EncodeStrings(c.name, vals)
	c.ix = nil
	c.rebuild()
}

func (c *strColState) compact(keep []int) {
	codes := c.codes()
	kept := make([]string, 0, len(keep))
	for _, id := range keep {
		kept = append(kept, c.dict.Symbol(codes[id]))
	}
	c.reencode(kept)
}

// absorbStrings extends the column with committed batch rows. When every
// new value is already in the dictionary, the codes and the imprint are
// extended in place (Section 4.1's cheap append); novel strings force a
// re-encode.
func (c *strColState) absorbStrings(vals []string) {
	newCodes := make([]int32, len(vals))
	for i, s := range vals {
		code, ok := c.dict.Code(s)
		if !ok {
			all := append(c.decodeAll(), vals...)
			c.reencode(all)
			return
		}
		newCodes[i] = code
	}
	c.dict.Codes().Append(newCodes...)
	if c.mode != Imprints {
		return
	}
	if c.ix == nil {
		c.rebuild()
	} else {
		c.ix.Append(c.codes())
	}
}

// ---- leaf compilation ----

// codeInterval translates a string leaf into the half-open code interval
// [lo, hi) it selects. ok=false means the leaf provably selects nothing.
func (c *strColState) codeInterval(p *leafPred) (lo, hi int32, ok bool, err error) {
	s := func(x any) (string, error) {
		if x == nil {
			return "", nil
		}
		v, isStr := x.(string)
		if !isStr {
			return "", fmt.Errorf("column %q is string but predicate bound is %T", c.name, x)
		}
		return v, nil
	}
	loS, err := s(p.low)
	if err != nil {
		return 0, 0, false, err
	}
	hiS, err := s(p.high)
	if err != nil {
		return 0, 0, false, err
	}
	card := int32(c.dict.Cardinality())
	switch p.kind {
	case kindRange: // inclusive [loS, hiS] per string-predicate convention
		l, h, in := c.dict.CodeRange(loS, hiS)
		return l, h, in, nil
	case kindAtLeast:
		l := c.dict.SearchCode(loS)
		return l, card, l < card, nil
	case kindLessThan:
		h := c.dict.SearchCode(hiS)
		return 0, h, h > 0, nil
	case kindEquals:
		code, in := c.dict.Code(loS)
		return code, code + 1, in, nil
	case kindPrefix:
		l, h, in := c.dict.PrefixCodeRange(loS)
		return l, h, in, nil
	}
	return 0, 0, false, fmt.Errorf("column %q: unsupported string leaf kind %d", c.name, p.kind)
}

// inCodes translates a StrIn list into the set of dictionary codes it
// hits (absent strings drop out).
func (c *strColState) inCodes(p *leafPred) ([]int32, error) {
	set, ok := p.low.([]string)
	if !ok {
		return nil, fmt.Errorf("column %q is string but IN-list holds %T", c.name, p.low)
	}
	codes := make([]int32, 0, len(set))
	for _, s := range set {
		if code, in := c.dict.Code(s); in {
			codes = append(codes, code)
		}
	}
	return codes, nil
}

// strLeafPlan is the compiled form of a string leaf: the predicate is
// translated through the dictionary exactly once into a code interval
// or code set, and the code column is captured at compile time. `none`
// records that the dictionary already proves the leaf selects nothing.
// The imprint pointer is read through the column state at probe time;
// dictionary re-encodes bump the table generation and force a
// recompile.
type strLeafPlan struct {
	c      *strColState
	kind   leafKind
	codes  []int32
	lo, hi int32 // half-open code interval (non-IN kinds)
	none   bool
	set    []int32            // kindIn
	member map[int32]struct{} // kindIn
}

func (c *strColState) compileLeaf(p *leafPred) (leafPlan, error) {
	pl := &strLeafPlan{c: c, kind: p.kind, codes: c.codes()}
	if p.kind == kindIn {
		set, err := c.inCodes(p)
		if err != nil {
			return nil, err
		}
		pl.set = set
		pl.none = len(set) == 0
		pl.member = make(map[int32]struct{}, len(set))
		for _, v := range set {
			pl.member[v] = struct{}{}
		}
		return pl, nil
	}
	lo, hi, ok, err := c.codeInterval(p)
	if err != nil {
		return nil, err
	}
	pl.lo, pl.hi, pl.none = lo, hi, !ok
	return pl, nil
}

func (pl *strLeafPlan) access() string { return pl.c.indexKind() }

func (pl *strLeafPlan) check() core.CheckFunc {
	if pl.none {
		return func(uint32) bool { return false }
	}
	codes := pl.codes
	if pl.kind == kindIn {
		member := pl.member
		return func(id uint32) bool { _, ok := member[codes[id]]; return ok }
	}
	lo, hi := pl.lo, pl.hi
	return func(id uint32) bool { v := codes[id]; return v >= lo && v < hi }
}

func (pl *strLeafPlan) runs() ([]core.CandidateRun, core.QueryStats) {
	if pl.none {
		// The dictionary proves the leaf selects nothing.
		return nil, core.QueryStats{}
	}
	c := pl.c
	if c.ix == nil {
		// Scan-only: every block is a candidate.
		return blockSpanRuns(len(pl.codes), false), core.QueryStats{}
	}
	var runs []core.CandidateRun
	var st core.QueryStats
	if pl.kind == kindIn {
		runs, st = c.ix.InSetCachelines(pl.set)
	} else {
		runs, st = c.ix.RangeCachelines(pl.lo, pl.hi)
	}
	vpc := c.ix.ValuesPerCacheline()
	cls := (len(pl.codes) + vpc - 1) / vpc
	return blocksFromCachelines(runs, BlockRows/vpc, cls), st
}

// estimate mirrors numLeafPlan.estimate: negative means no imprint-
// backed estimate is available.
func (pl *strLeafPlan) estimate() float64 {
	c := pl.c
	if c.ix == nil {
		return -1
	}
	if pl.none {
		return 0
	}
	if pl.kind == kindIn {
		est := float64(len(pl.set)) / float64(c.ix.Bins())
		if est > 1 {
			est = 1
		}
		return est
	}
	return c.ix.EstimateSelectivity(pl.lo, pl.hi)
}
