package table

import (
	"fmt"
	"slices"
	"strings"
	"sync"

	"repro/internal/column"
	"repro/internal/core"
	"repro/internal/wal"
)

// strSegment is one horizontal slice of a string column: its own
// dictionary (lexicographically ordered int32 codes over just this
// segment's values, see column.StringDict) and a column imprint over
// the code slab. Per-segment dictionaries are what keep string columns
// bounded under growth: a novel string in a batch append or update
// re-encodes one segment, never the whole column.
//
// gen is the segment's generation, unique within the column and bumped
// whenever the dictionary changes shape (re-encode on novel strings,
// compact). Compiled string leaves cache their dictionary translation
// per segment keyed by gen, so appending rows — which only ever opens
// new segments or extends the tail in place — never invalidates a
// cached translation over a sealed segment.
type strSegment struct {
	dict *column.StringDict
	ix   *core.Index[int32]
	gen  uint64
}

func (s *strSegment) codes() []int32 { return s.dict.Codes().Values() }
func (s *strSegment) rows() int      { return s.dict.Codes().Len() }

// strColState is the per-column state of a string attribute, segmented
// like colState. String predicates translate to per-segment code
// intervals, so StrRange and friends compose in the same And/Or/AndNot
// trees as numeric leaves.
type strColState struct {
	name string
	// segs is written only under the owning table's write lock and read
	// under at least its read lock (snapshotsafe enforces both).
	segs    []*strSegment //imprintvet:guarded by=mu
	mode    IndexMode     // Imprints or NoIndex
	vpcOpts core.Options
	segRows int
	genSeq  uint64 // generation source; each (re-)encode gets a fresh value
}

// nextGen returns a column-unique generation for a fresh or re-encoded
// segment dictionary; callers hold the table's write lock.
func (c *strColState) nextGen() uint64 {
	c.genSeq++
	return c.genSeq
}

// AddStringColumn defines a new string column, dictionary-encoding vals
// segment by segment and (unless mode is NoIndex) building a code
// imprint per segment. Like AddColumn, the values are copied on ingest.
// Zonemap mode is not supported for strings: dictionary codes are
// dense, which makes the imprint strictly better.
func (t *Table) AddStringColumn(name string, vals []string, mode IndexMode, opts core.Options) error {
	if mode == Zonemap {
		return fmt.Errorf("table %s: column %q: zonemap mode is not supported for string columns", t.name, name)
	}
	if t.shard != nil {
		return addColumnSharded(t, name, vals, func(kid *Table, part []string) error {
			return kid.AddStringColumn(name, part, mode, opts)
		})
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkWALSchemaChangeLocked(); err != nil {
		return err
	}
	// Layout changes flush first: the delta's row shape must match
	// t.order, and the new column's values must cover buffered rows too.
	t.flushAllLocked()
	if err := t.checkNewColumn(name, len(vals), opts); err != nil {
		return err
	}
	cs := &strColState{name: name, mode: mode, vpcOpts: opts, segRows: t.segRows}
	cs.absorbStrings(vals)
	t.installColumn(name, cs, len(vals))
	return nil
}

// StringColumn materializes the decoded values of a string column. The
// returned slice is freshly allocated and safe to keep.
func (t *Table) StringColumn(name string) ([]string, error) {
	if t.shard != nil {
		return t.shardStringColumn(name)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	cs, err := strCol(t, name)
	if err != nil {
		return nil, err
	}
	out := cs.decodeAll()
	if view := t.deltaViewLocked(); view != nil {
		if ci := view.colIdx(name); ci >= 0 {
			for _, row := range view.rows {
				out = append(out, row[ci].(string))
			}
		}
	}
	return out, nil
}

// UpdateString changes one string value in place. When the new value is
// already in the segment's dictionary the covering imprint is widened
// (Section 4.2); a novel string re-encodes that one segment — code
// order must stay aligned with string order — leaving every other
// segment (and plans compiled over them) untouched.
func (t *Table) UpdateString(name string, id int, v string) error {
	if sh := t.shard; sh != nil {
		c, lid := sh.decode(id)
		return sh.kids[c].UpdateString(name, lid, v)
	}
	lg, lsn, err := t.updateStringLocked(name, id, v)
	if err != nil || lg == nil {
		return err
	}
	return lg.WaitDurable(lsn)
}

// updateStringLocked applies the update under the write lock and, with
// a WAL attached, logs it in the same critical section.
func (t *Table) updateStringLocked(name string, id int, v string) (*wal.Log, int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cs, err := strCol(t, name)
	if err != nil {
		return nil, 0, err
	}
	if id < 0 || id >= t.totalRowsLocked() {
		return nil, 0, fmt.Errorf("table %s: row %d out of range", t.name, id)
	}
	if id >= cs.colRows() {
		// Still buffered: replace the delta row copy-on-write; no
		// re-encode, no imprint widening.
		if err := t.deltaSetLocked(name, id, v); err != nil {
			return nil, 0, err
		}
		return t.logStringUpdateLocked(name, id, v)
	}
	seg, local := cs.segs[id/cs.segRows], id%cs.segRows
	if code, ok := seg.dict.Code(v); ok {
		seg.codes()[local] = code
		if seg.ix != nil {
			seg.ix.MarkUpdated(local, code)
		}
		return t.logStringUpdateLocked(name, id, v)
	}
	all := cs.decodeSegment(seg)
	all[local] = v
	cs.reencodeSegment(seg, all)
	return t.logStringUpdateLocked(name, id, v)
}

// logStringUpdateLocked frames one string update into the attached WAL
// (no-op without one); callers hold the write lock.
//
//imprintvet:locks held=mu
func (t *Table) logStringUpdateLocked(name string, id int, v string) (*wal.Log, int64, error) {
	d := t.delta
	if d == nil || d.wal == nil {
		return nil, 0, nil
	}
	ci := slices.Index(t.order, name)
	return t.walAppendLocked(d, encodeWALUpdate(id, ci, walTagString, v))
}

func strCol(t *Table, name string) (*strColState, error) {
	c, ok := t.cols[name]
	if !ok {
		return nil, fmt.Errorf("table %s: no column %q", t.name, name)
	}
	cs, ok := c.(*strColState)
	if !ok {
		return nil, fmt.Errorf("table %s: column %q holds %s, not string",
			t.name, name, c.colType())
	}
	return cs, nil
}

// ---- anyColumn implementation ----

func (c *strColState) colName() string { return c.name }
func (c *strColState) colType() string { return "string" }

//imprintvet:locks held=mu.R
func (c *strColState) segments() int { return len(c.segs) }

//imprintvet:locks held=mu.R
func (c *strColState) colRows() int {
	if len(c.segs) == 0 {
		return 0
	}
	return (len(c.segs)-1)*c.segRows + c.segs[len(c.segs)-1].rows()
}

//imprintvet:locks held=mu.R
func (c *strColState) sizeBytes() int64 {
	var n int64
	for _, s := range c.segs {
		n += s.dict.SizeBytes()
	}
	return n
}

//imprintvet:locks held=mu.R
func (c *strColState) indexBytes() int64 {
	var n int64
	for _, s := range c.segs {
		if s.ix != nil {
			n += s.ix.SizeBytes()
		}
	}
	return n
}

func (c *strColState) indexKind() string {
	if c.mode == Imprints {
		return "imprints"
	}
	return "scan"
}

//imprintvet:locks held=mu.R
func (c *strColState) indexStats() ColumnIndexStats {
	st := ColumnIndexStats{Segments: len(c.segs)}
	var sat float64
	for _, s := range c.segs {
		if s.ix == nil {
			continue
		}
		st.IndexedSegments++
		st.StoredVectors += s.ix.StoredVectors()
		st.DictEntries += s.ix.DictEntries()
		st.SizeBytes += s.ix.SizeBytes()
		sat += s.ix.Saturation()
	}
	if st.IndexedSegments > 0 {
		st.Saturation = sat / float64(st.IndexedSegments)
	}
	return st
}

//imprintvet:locks held=mu
func (c *strColState) maintain(satLimit float64, rebuild bool) int {
	n := 0
	for _, s := range c.segs {
		if s.ix != nil && s.ix.NeedsRebuild(satLimit, 0, 0) {
			n++
			if rebuild {
				c.rebuildSegmentIndex(s)
			}
		}
	}
	return n
}

// rebuildSegmentIndex rebuilds one segment's code imprint in place (the
// dictionary is unchanged, so cached plan translations stay valid).
func (c *strColState) rebuildSegmentIndex(s *strSegment) {
	s.ix = nil
	if c.mode != Imprints || s.rows() == 0 {
		return
	}
	s.ix = core.Build(s.codes(), c.vpcOpts)
}

//imprintvet:locks held=mu.R
func (c *strColState) valueAt(id int) any {
	seg := c.segs[id/c.segRows]
	return seg.dict.Symbol(seg.codes()[id%c.segRows])
}

func (c *strColState) decodeSegment(s *strSegment) []string {
	codes := s.codes()
	out := make([]string, len(codes))
	for i, code := range codes {
		out[i] = s.dict.Symbol(code)
	}
	return out
}

//imprintvet:locks held=mu.R
func (c *strColState) decodeAll() []string {
	out := make([]string, 0, c.colRows())
	for _, s := range c.segs {
		out = append(out, c.decodeSegment(s)...)
	}
	return out
}

// newSegment encodes vals into a fresh segment with its own dictionary
// and generation.
func (c *strColState) newSegment(vals []string) *strSegment {
	s := &strSegment{dict: column.EncodeStrings(c.name, vals), gen: c.nextGen()}
	c.rebuildSegmentIndex(s)
	return s
}

// reencodeSegment replaces one segment's dictionary with a fresh
// encoding of vals and rebuilds its index, bumping the segment
// generation so cached translations over it are dropped.
func (c *strColState) reencodeSegment(s *strSegment, vals []string) {
	s.dict = column.EncodeStrings(c.name, vals)
	s.gen = c.nextGen()
	c.rebuildSegmentIndex(s)
}

//imprintvet:locks held=mu
func (c *strColState) compact(keep []int) {
	kept := make([]string, 0, len(keep))
	for _, id := range keep {
		seg := c.segs[id/c.segRows]
		kept = append(kept, seg.dict.Symbol(seg.codes()[id%c.segRows]))
	}
	c.segs = nil
	c.absorbStrings(kept)
}

// absorbStrings extends the column with new rows, filling the active
// tail segment and opening fresh segments as it fills. When every value
// appended to the tail is already in its dictionary, the codes and the
// imprint extend in place (Section 4.1's cheap append); a novel string
// re-encodes the tail segment only — sealed segments never change.
//
//imprintvet:locks held=mu
func (c *strColState) absorbStrings(vals []string) {
	for len(vals) > 0 {
		if len(c.segs) == 0 || c.segs[len(c.segs)-1].rows() == c.segRows {
			c.segs = append(c.segs, c.newSegment(nil))
		}
		tail := c.segs[len(c.segs)-1]
		room := c.segRows - tail.rows()
		if room > len(vals) {
			room = len(vals)
		}
		c.extendTail(tail, vals[:room])
		vals = vals[room:]
	}
}

// extendTail appends chunk to the tail segment, re-encoding it only
// when a value is missing from its dictionary.
func (c *strColState) extendTail(s *strSegment, chunk []string) {
	newCodes := make([]int32, len(chunk))
	for i, v := range chunk {
		code, ok := s.dict.Code(v)
		if !ok {
			all := append(c.decodeSegment(s), chunk...)
			c.reencodeSegment(s, all)
			return
		}
		newCodes[i] = code
	}
	s.dict.Codes().Append(newCodes...)
	if c.mode != Imprints {
		return
	}
	if s.ix == nil {
		c.rebuildSegmentIndex(s)
	} else {
		s.ix.Append(s.codes())
	}
}

// ---- leaf compilation ----

// strSegTrans is one segment's dictionary translation of a string
// leaf: the half-open code interval or code set the predicate selects
// there. Valid while gen matches the segment's generation — sealed
// segments never change generation on appends, so cached translations
// survive across executions of a prepared statement.
type strSegTrans struct {
	gen    uint64
	lo, hi int32 // half-open code interval (non-IN kinds)
	none   bool  // the dictionary proves the leaf selects nothing here
	set    []int32
	member map[int32]struct{}
}

// strLeafPlan is the compiled form of a string leaf: the bounds are
// typed once at compile time, and the per-segment dictionary
// translation is derived lazily and cached keyed by segment
// generation. The cache makes prepared executions segment-incremental:
// appending rows re-translates at most the active tail segment.
type strLeafPlan struct {
	c         *strColState
	kind      leafKind
	low, high string
	inSet     []string // kindIn

	cacheMu sync.Mutex
	cache   []*strSegTrans // indexed by segment
	kerns   []strKernEntry // cached per-segment selection-mask kernels
}

// strKernEntry is one cached code-slab kernel with the identity it was
// derived for: the dictionary generation (the translation it bakes in)
// and the code slab it reads (tail appends grow the slab without a
// generation bump, so the slab header is checked too).
type strKernEntry struct {
	gen   uint64
	codes *int32
	n     int
	k     blockKernel
}

func (c *strColState) compileLeaf(p *leafPred) (leafPlan, error) {
	pl := &strLeafPlan{c: c, kind: p.kind}
	str := func(x any) (string, error) {
		if x == nil {
			return "", nil
		}
		v, ok := x.(string)
		if !ok {
			return "", fmt.Errorf("column %q is string but predicate bound is %T", c.name, x)
		}
		return v, nil
	}
	switch p.kind {
	case kindIn:
		set, ok := p.low.([]string)
		if !ok {
			return nil, fmt.Errorf("column %q is string but IN-list holds %T", c.name, p.low)
		}
		pl.inSet = set
		return pl, nil
	case kindRange, kindAtLeast, kindLessThan, kindEquals, kindPrefix:
		var err error
		if pl.low, err = str(p.low); err != nil {
			return nil, err
		}
		if pl.high, err = str(p.high); err != nil {
			return nil, err
		}
		return pl, nil
	}
	return nil, fmt.Errorf("column %q: unknown leaf kind %d", c.name, p.kind)
}

// trans returns segment s's cached dictionary translation, deriving it
// when missing or stale (the segment re-encoded since).
//
//imprintvet:locks held=mu.R
func (pl *strLeafPlan) trans(s int) *strSegTrans {
	seg := pl.c.segs[s]
	pl.cacheMu.Lock()
	defer pl.cacheMu.Unlock()
	for len(pl.cache) <= s {
		pl.cache = append(pl.cache, nil)
	}
	if e := pl.cache[s]; e != nil && e.gen == seg.gen {
		return e
	}
	e := pl.translate(seg)
	pl.cache[s] = e
	return e
}

// translate derives the leaf's code interval or code set through one
// segment's dictionary.
func (pl *strLeafPlan) translate(seg *strSegment) *strSegTrans {
	e := &strSegTrans{gen: seg.gen}
	dict := seg.dict
	if pl.kind == kindIn {
		for _, v := range pl.inSet {
			if code, in := dict.Code(v); in {
				e.set = append(e.set, code)
			}
		}
		e.none = len(e.set) == 0
		e.member = make(map[int32]struct{}, len(e.set))
		for _, code := range e.set {
			e.member[code] = struct{}{}
		}
		return e
	}
	card := int32(dict.Cardinality())
	var ok bool
	switch pl.kind {
	case kindRange: // inclusive [low, high] per string-predicate convention
		e.lo, e.hi, ok = dict.CodeRange(pl.low, pl.high)
	case kindAtLeast:
		e.lo = dict.SearchCode(pl.low)
		e.hi, ok = card, e.lo < card
	case kindLessThan:
		e.hi = dict.SearchCode(pl.high)
		ok = e.hi > 0
	case kindEquals:
		var code int32
		code, ok = dict.Code(pl.low)
		e.lo, e.hi = code, code+1
	case kindPrefix:
		e.lo, e.hi, ok = dict.PrefixCodeRange(pl.low)
	}
	e.none = !ok
	return e
}

func (pl *strLeafPlan) access() string { return pl.c.indexKind() }

// prune is exact for string leaves: the segment's own dictionary
// proves whether any of its values can satisfy the predicate.
//
//imprintvet:locks held=mu.R
func (pl *strLeafPlan) prune(s int) bool {
	if pl.c.segs[s].rows() == 0 {
		return true
	}
	return pl.trans(s).none
}

//imprintvet:locks held=mu.R
func (pl *strLeafPlan) segCheck(s int) core.CheckFunc {
	e := pl.trans(s)
	if e.none {
		return neverMatch
	}
	codes := pl.c.segs[s].codes()
	if pl.kind == kindIn {
		member := e.member
		return func(id uint32) bool { _, ok := member[codes[id]]; return ok }
	}
	lo, hi := e.lo, e.hi
	return func(id uint32) bool { v := codes[id]; return v >= lo && v < hi }
}

// rowCheck tests boxed delta-row strings directly — the raw-string
// form of the per-segment dictionary translation: Range is inclusive
// on both ends, Equals is exact, Prefix is a literal prefix test.
func (pl *strLeafPlan) rowCheck() func(v any) bool {
	switch pl.kind {
	case kindIn:
		member := make(map[string]struct{}, len(pl.inSet))
		for _, s := range pl.inSet {
			member[s] = struct{}{}
		}
		return func(v any) bool { _, ok := member[v.(string)]; return ok }
	case kindRange:
		low, high := pl.low, pl.high
		return func(v any) bool { s := v.(string); return s >= low && s <= high }
	case kindAtLeast:
		low := pl.low
		return func(v any) bool { return v.(string) >= low }
	case kindLessThan:
		high := pl.high
		return func(v any) bool { return v.(string) < high }
	case kindPrefix:
		pre := pl.low
		return func(v any) bool { return strings.HasPrefix(v.(string), pre) }
	default: // kindEquals; compileLeaf rejected every other kind
		low := pl.low
		return func(v any) bool { return v.(string) == low }
	}
}

//imprintvet:locks held=mu.R
func (pl *strLeafPlan) segRuns(s int, dst []core.CandidateRun) ([]core.CandidateRun, core.QueryStats) {
	e := pl.trans(s)
	if e.none {
		return dst, core.QueryStats{}
	}
	seg := pl.c.segs[s]
	if seg.ix == nil {
		// Scan-only segment: every block is a candidate.
		return blockSpanRunsInto(dst, seg.rows(), false), core.QueryStats{}
	}
	var st core.QueryStats
	tmp := getRunScratch()
	cl := (*tmp)[:0]
	if pl.kind == kindIn {
		cl, st = seg.ix.InSetCachelinesInto(cl, e.set)
	} else {
		cl, st = seg.ix.RangeCachelinesInto(cl, e.lo, e.hi)
	}
	vpc := seg.ix.ValuesPerCacheline()
	cls := (seg.rows() + vpc - 1) / vpc
	runs := blocksFromCachelinesInto(dst, cl, BlockRows/vpc, cls)
	*tmp = cl[:0]
	putRunScratch(tmp)
	return runs, st
}

// segKernel returns the leaf's cached selection-mask kernel over
// segment s's code slab, re-deriving it when the segment re-encoded
// (generation bump) or its slab moved or grew (tail append).
//
//imprintvet:locks held=mu.R
func (pl *strLeafPlan) segKernel(s int) blockKernel {
	e := pl.trans(s)
	seg := pl.c.segs[s]
	codes := seg.codes()
	if e.none || len(codes) == 0 {
		return zeroMask
	}
	pl.cacheMu.Lock()
	defer pl.cacheMu.Unlock()
	for len(pl.kerns) <= s {
		pl.kerns = append(pl.kerns, strKernEntry{})
	}
	k := &pl.kerns[s]
	if k.k != nil && k.gen == seg.gen && k.codes == &codes[0] && k.n == len(codes) {
		return k.k
	}
	k.gen, k.codes, k.n = seg.gen, &codes[0], len(codes)
	if pl.kind == kindIn {
		k.k = inKernel(codes, e.set, e.member)
	} else {
		k.k = intRangeKernel(codes, e.lo, e.hi)
	}
	return k.k
}

// segEstimate mirrors numLeafPlan.segEstimate: negative means segment s
// has no imprint-backed estimate.
//
//imprintvet:locks held=mu.R
func (pl *strLeafPlan) segEstimate(s int) float64 {
	seg := pl.c.segs[s]
	if seg.ix == nil {
		return -1
	}
	e := pl.trans(s)
	if e.none {
		return 0
	}
	if pl.kind == kindIn {
		est := float64(len(e.set)) / float64(seg.ix.Bins())
		if est > 1 {
			est = 1
		}
		return est
	}
	return seg.ix.EstimateSelectivity(e.lo, e.hi)
}
