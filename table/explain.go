package table

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Plan is the rendered execution plan of a Query: what the evaluator
// decided per leaf and per segment (pruned vs imprints probe vs zonemap
// vs scan fallback, the estimated selectivity behind that choice) and
// what each subtree's candidate-run list looked like after composition.
// Explain executes the index probes against every segment — the
// candidate-run statistics are real — but never materializes a row.
type Plan struct {
	Table       string
	Columns     []string // resolved projection
	Limit       int      // row cap; negative when the query has no limit
	TotalRows   int      // sealed plus buffered delta rows
	TotalBlocks int      // row blocks of BlockRows rows (sealed storage)
	// DeltaRows is the number of buffered delta rows the execution would
	// scan exactly alongside the sealed segments; zero without delta
	// ingest.
	DeltaRows int
	// SegmentRows / Segments describe the storage segmentation the plan
	// ran over; Parallelism is the worker count execution would use.
	SegmentRows int
	Segments    int
	Parallelism int
	// SegmentsPruned counts the segments that contributed no candidate
	// blocks at the root — fully skipped by summary/dictionary pruning
	// or probed down to nothing.
	SegmentsPruned int
	Root           *PlanNode
	Stats          core.QueryStats // aggregated index-probe stats
	// FastCountRows is the number of live rows Count would tally
	// wholesale from the exact candidate runs (span minus a deleted-
	// bitmap popcount) — the count fast path's coverage.
	FastCountRows uint64
	// BlocksVectorized previews the vectorized residual tier: the 64-row
	// blocks of inexact candidate runs a full execution would evaluate
	// through selection-mask kernels. An unlimited execution reports the
	// same number in QueryStats.BlocksVectorized; one that stops early
	// (Limit) reports fewer. Zero when SelectOptions.Scalar forces the
	// row-at-a-time path.
	BlocksVectorized uint64
	// OrderBy names the ordering an OrderBy query would apply (e.g.
	// "price desc"); empty without one.
	OrderBy string
	// Aggregates lists the aggregate specs an ExplainAggregate
	// described (e.g. "sum(price)"); empty for plain Explain.
	Aggregates []string
	// AggSegments is the per-segment aggregate pushdown breakdown of an
	// ExplainAggregate: which tier each segment's aggregates resolve to.
	AggSegments []AggSegmentPlan
}

// AggSegmentPlan is one segment's aggregate pushdown decision.
type AggSegmentPlan struct {
	Segment int
	Rows    int // rows of the segment
	// Tier is the segment's worst row source: "summary" (every
	// aggregate answered from summaries / the row count — value slabs
	// never touched), "wholesale" (exact runs folded span-wise, no
	// residual checks), "scanned" (row-by-row residual evaluation), or
	// "pruned" (no candidate rows).
	Tier string
	// SummaryRows / WholesaleRows / ScannedRows count per-aggregate row
	// contributions by tier (as QueryStats.SummaryAggRows and friends).
	SummaryRows   uint64
	WholesaleRows uint64
	ScannedRows   uint64
}

// PlanNode is one node of the plan tree, mirroring the predicate tree.
// Leaf statistics are aggregated across segments; SegmentDetails holds
// the per-segment breakdown when the table has more than one segment.
type PlanNode struct {
	Op     string // "and", "or", "andnot", "leaf", "all"
	Pred   string // leaf predicate rendering, e.g. `city in ["A", "N"]`
	Column string // leaf column name
	// Access is the leaf access path: "imprints", "zonemap", "scan" —
	// or "pruned" when every segment was pruned, and "mixed" when
	// segments resolved differently (see SegmentDetails).
	Access string
	Reason string // why a non-default path was chosen ("unselective", "summary excludes")
	// Selectivity is the leaf's estimated selectivity (fraction of rows
	// expected to qualify, row-weighted across probed segments) from the
	// imprint histograms; negative when no segment has an imprint to
	// estimate from (scan-only, zonemap).
	Selectivity float64
	// Runs / CandidateBlocks / ExactBlocks summarize the candidate-run
	// lists this subtree produced across segments: maximal runs, total
	// candidate row blocks, and how many of those are exact (no residual
	// check).
	Runs            int
	CandidateBlocks uint64
	ExactBlocks     uint64
	Stats           core.QueryStats // leaf probe stats
	// SegmentDetails breaks a leaf down per segment (multi-segment
	// tables only): the access path each segment resolved to, including
	// "pruned" for segments skipped without probing.
	SegmentDetails []SegmentPlan
	Children       []*PlanNode
}

// SegmentPlan is one segment's slice of a leaf's plan.
type SegmentPlan struct {
	Segment         int
	Rows            int
	Access          string // "pruned", "imprints", "zonemap", "scan"
	Reason          string
	Selectivity     float64 // negative when the segment has no imprint
	Runs            int
	CandidateBlocks uint64
	ExactBlocks     uint64
	Stats           core.QueryStats
}

// setRuns records a node's candidate-run summary.
func (n *PlanNode) setRuns(runs []core.CandidateRun) {
	n.Runs = len(runs)
	for _, r := range runs {
		n.CandidateBlocks += uint64(r.Count)
		if r.Exact {
			n.ExactBlocks += uint64(r.Count)
		}
	}
}

// opNode builds an inner plan node from its composed runs and children.
func opNode(op string, runs []core.CandidateRun, kids []*PlanNode) *PlanNode {
	n := &PlanNode{Op: op, Children: kids}
	n.setRuns(runs)
	return n
}

// Explain builds the query's execution plan without materializing rows:
// every segment is evaluated (in parallel, like a real execution) and
// the per-segment plans are merged into one tree with per-leaf segment
// breakdowns.
func (q *Query) Explain() (*Plan, error) {
	if q.t.shard != nil {
		return q.shardExplain(nil, false)
	}
	q.t.mu.RLock()
	defer q.t.mu.RUnlock()
	return q.explainLocked(nil)
}

// ExplainAggregate builds the plan of an Aggregate execution of the
// query: the predicate plan of Explain plus the per-segment aggregate
// pushdown decisions — which segments answer purely from summaries,
// which fold exact runs wholesale, and which fall back to a row-by-row
// scan (see AggSegmentPlan). Like Explain, no value is aggregated.
// Queries ExplainAggregate cannot describe faithfully are rejected
// like Aggregate rejects them (OrderBy); a Limit-ed aggregation folds
// its first rows one by one through the id path, so its plan carries
// the limit but no pushdown tier lines.
func (q *Query) ExplainAggregate(specs ...AggSpec) (*Plan, error) {
	if q.t.shard != nil {
		return q.shardExplain(specs, true)
	}
	q.t.mu.RLock()
	defer q.t.mu.RUnlock()
	if q.order != nil {
		return nil, fmt.Errorf("table %s: OrderBy does not apply to Aggregate (aggregates are order-independent)", q.t.name)
	}
	binds, err := q.t.resolveAggs(specs)
	if err != nil {
		return nil, err
	}
	return q.explainLocked(binds)
}

//imprintvet:locks held=mu.R
func (q *Query) explainLocked(binds []aggBind) (*Plan, error) {
	names, _, err := q.projection()
	if err != nil {
		return nil, err
	}
	en, err := q.bind()
	if err != nil {
		return nil, err
	}
	var st core.QueryStats
	nsegs := q.t.segCount()
	par := resolveParallelism(q.opts, nsegs)
	segPlans := make([]*PlanNode, nsegs)
	aggSegs := make([]AggSegmentPlan, nsegs)
	var fast, vect uint64
	pruned := 0
	ferr := q.t.forEachSegment(q.opts.Ctx, nsegs, par,
		func(s int) segOut {
			var o segOut
			ev := q.t.evalSegment(en, s, q.opts, &o.st, true)
			o.plan = ev.plan
			o.fast = q.t.fastCountSegment(s, ev.runs)
			if !q.opts.Scalar {
				o.vect = q.t.vectorizedBlocksSegment(s, ev.runs)
			}
			if binds != nil && !q.limited {
				aggSegs[s] = q.t.aggSegmentPlan(s, ev, binds)
			}
			releaseEval(&ev)
			return o
		},
		func(s int, o segOut) bool {
			st.Add(o.st)
			segPlans[s] = o.plan
			fast += o.fast
			vect += o.vect
			if o.plan.CandidateBlocks == 0 {
				pruned++
			}
			return true
		})
	if ferr != nil {
		return nil, q.t.abortErr(ferr)
	}
	lim := -1
	if q.limited {
		lim = q.limit
	}
	deltaRows := 0
	if view := q.t.deltaViewLocked(); view != nil {
		// Evaluate the delta filter exactly (like an execution would) so
		// the plan's stats carry the delta-scan cost.
		deltaRows = len(view.rows)
		view.scan(view.matcher(en), &st, func(int, []any) bool { return true })
	}
	infos := make([]planSegInfo, nsegs)
	for s := range infos {
		infos[s] = planSegInfo{seg: s, rows: q.t.segLen(s)}
	}
	root := aggregatePlans(segPlans, infos)
	p := &Plan{
		Table:            q.t.name,
		Columns:          append([]string(nil), names...),
		Limit:            lim,
		TotalRows:        q.t.rows + deltaRows,
		TotalBlocks:      (q.t.rows + BlockRows - 1) / BlockRows,
		DeltaRows:        deltaRows,
		SegmentRows:      q.t.segRows,
		Segments:         nsegs,
		Parallelism:      par,
		SegmentsPruned:   pruned,
		Root:             root,
		Stats:            st,
		FastCountRows:    fast,
		BlocksVectorized: vect,
	}
	if q.order != nil {
		p.OrderBy = q.order.String()
	}
	if binds != nil {
		for _, b := range binds {
			p.Aggregates = append(p.Aggregates, b.spec.String())
		}
		// A Limit-ed aggregation folds row by row through the id path;
		// no pushdown tiers apply, so none are advertised.
		if !q.limited {
			p.AggSegments = aggSegs
		}
	}
	return p, nil
}

// aggSegmentPlan classifies one segment's aggregate pushdown from its
// composed run list, mirroring the unlimited executor's tier decisions
// without folding any value. ScannedRows counts the live candidate
// rows the scan tier would visit row by row (qualifying or not — the
// residual checks have not run). Callers hold the read lock.
//
//imprintvet:locks held=mu.R
func (t *Table) aggSegmentPlan(s int, ev evaluated, binds []aggBind) AggSegmentPlan {
	n := t.segLen(s)
	ap := AggSegmentPlan{Segment: s, Rows: n}
	nspecs := uint64(len(binds))
	if t.aggSummaryEligible(s, ev.runs) {
		for _, b := range binds {
			if b.col == nil {
				ap.SummaryRows += uint64(n)
				continue
			}
			if _, ok := b.col.aggSummary(b.spec.op, s); ok {
				ap.SummaryRows += uint64(n)
			} else {
				ap.WholesaleRows += uint64(n)
			}
		}
	} else {
		// Classify run by run; every run is handled at span granularity
		// (spanDone), so the block path never executes.
		var scratch core.QueryStats
		t.walkBlocks(s, ev, &scratch,
			func(from, to int, exact bool) spanAction {
				if exact && t.deletedInSpan(from, to) == 0 {
					span := uint64(to - from)
					for _, b := range binds {
						if b.col == nil {
							ap.SummaryRows += span
						} else {
							ap.WholesaleRows += span
						}
					}
				} else {
					ap.ScannedRows += uint64(t.liveRows(from, to)) * nspecs
				}
				return spanDone
			}, nil)
	}
	switch {
	case ap.ScannedRows > 0:
		ap.Tier = "scanned"
	case ap.WholesaleRows > 0:
		ap.Tier = "wholesale"
	case ap.SummaryRows > 0:
		ap.Tier = "summary"
	default:
		ap.Tier = "pruned"
	}
	return ap
}

// planSegInfo labels one per-segment plan for the merge: the segment
// number the breakdown reports (a global segment for sharded tables)
// and its row count.
type planSegInfo struct {
	seg  int
	rows int
}

// aggregatePlans merges the per-segment plan trees (identical shape —
// one per segment of the same execution tree) into a single tree:
// statistics are summed, and leaves additionally keep the per-segment
// breakdown when there is more than one segment. infos labels plans
// one-to-one.
func aggregatePlans(plans []*PlanNode, infos []planSegInfo) *PlanNode {
	if len(plans) == 0 {
		// Empty table: a bare node standing for the whole (empty) scan.
		return &PlanNode{Op: "all", Pred: "true"}
	}
	if len(plans) == 1 {
		return plans[0]
	}
	first := plans[0]
	agg := &PlanNode{Op: first.Op, Pred: first.Pred, Column: first.Column, Selectivity: -1}
	// Sum the run summaries and stats.
	for _, p := range plans {
		agg.Runs += p.Runs
		agg.CandidateBlocks += p.CandidateBlocks
		agg.ExactBlocks += p.ExactBlocks
		agg.Stats.Add(p.Stats)
	}
	if first.Op == "leaf" {
		aggregateLeaf(agg, plans, infos)
	}
	for k := range first.Children {
		kids := make([]*PlanNode, len(plans))
		for s, p := range plans {
			kids[s] = p.Children[k]
		}
		agg.Children = append(agg.Children, aggregatePlans(kids, infos))
	}
	return agg
}

// aggregateLeaf fills a merged leaf node: the per-segment breakdown,
// the dominant access path and the row-weighted selectivity estimate.
func aggregateLeaf(agg *PlanNode, plans []*PlanNode, infos []planSegInfo) {
	access := ""
	uniform, allPruned := true, true
	var estRows, estSum float64
	for s, p := range plans {
		rows := infos[s].rows
		agg.SegmentDetails = append(agg.SegmentDetails, SegmentPlan{
			Segment:         infos[s].seg,
			Rows:            rows,
			Access:          p.Access,
			Reason:          p.Reason,
			Selectivity:     p.Selectivity,
			Runs:            p.Runs,
			CandidateBlocks: p.CandidateBlocks,
			ExactBlocks:     p.ExactBlocks,
			Stats:           p.Stats,
		})
		if p.Access != "pruned" {
			allPruned = false
			if access == "" {
				access = p.Access
				agg.Reason = p.Reason
			} else if access != p.Access {
				uniform = false
			}
			if p.Selectivity >= 0 {
				estSum += p.Selectivity * float64(rows)
				estRows += float64(rows)
			}
		}
	}
	switch {
	case allPruned:
		agg.Access, agg.Reason = "pruned", "summary excludes"
	case uniform:
		agg.Access = access
	default:
		agg.Access, agg.Reason = "mixed", ""
	}
	if estRows > 0 {
		agg.Selectivity = estSum / estRows
	}
}

// String renders the plan as an indented tree, e.g.:
//
//	select qty, city from orders limit 10 (550000 rows, 8594 blocks of 64, 9 segments of 65536, parallelism 4)
//	└─ or: 312 candidate blocks in 14 runs (88 exact)
//	   ├─ qty in [4900, 5100): imprints est=0.031 → 301 blocks in 12 runs (88 exact), 4211 probes
//	   │    · seg 0 (65536 rows): pruned (summary excludes)
//	   │    · seg 1 (65536 rows): imprints est=0.210 → 301 blocks in 12 runs (88 exact), 4211 probes
//	   └─ city prefix "Ams": imprints est=0.120 → 95 blocks in 3 runs (0 exact), 4211 probes
func (p *Plan) String() string {
	var sb strings.Builder
	if len(p.Aggregates) > 0 {
		fmt.Fprintf(&sb, "select %s from %s", strings.Join(p.Aggregates, ", "), p.Table)
	} else {
		fmt.Fprintf(&sb, "select %s from %s", strings.Join(p.Columns, ", "), p.Table)
	}
	if p.OrderBy != "" {
		fmt.Fprintf(&sb, " order by %s", p.OrderBy)
	}
	if p.Limit >= 0 {
		fmt.Fprintf(&sb, " limit %d", p.Limit)
	}
	fmt.Fprintf(&sb, " (%d rows, %d blocks of %d", p.TotalRows, p.TotalBlocks, BlockRows)
	if p.Segments > 1 {
		fmt.Fprintf(&sb, ", %d segments of %d, parallelism %d", p.Segments, p.SegmentRows, p.Parallelism)
		if p.SegmentsPruned > 0 {
			fmt.Fprintf(&sb, ", %d pruned", p.SegmentsPruned)
		}
	}
	if p.DeltaRows > 0 {
		fmt.Fprintf(&sb, ", delta: %d rows", p.DeltaRows)
	}
	if p.FastCountRows > 0 {
		fmt.Fprintf(&sb, ", count fast path: %d rows", p.FastCountRows)
	}
	if p.BlocksVectorized > 0 {
		fmt.Fprintf(&sb, ", vectorized: %d blocks", p.BlocksVectorized)
	}
	sb.WriteString(")\n")
	p.Root.render(&sb, "", "")
	if len(p.AggSegments) > 0 {
		sb.WriteString("aggregate pushdown:\n")
		for _, ap := range p.AggSegments {
			fmt.Fprintf(&sb, "  · seg %d (%d rows): %s", ap.Segment, ap.Rows, renderTier(ap.Tier))
			var parts []string
			if ap.SummaryRows > 0 {
				parts = append(parts, fmt.Sprintf("%d agg-rows from summaries", ap.SummaryRows))
			}
			if ap.WholesaleRows > 0 {
				parts = append(parts, fmt.Sprintf("%d agg-rows wholesale", ap.WholesaleRows))
			}
			if ap.ScannedRows > 0 {
				parts = append(parts, fmt.Sprintf("%d agg-rows scanned", ap.ScannedRows))
			}
			if len(parts) > 0 {
				fmt.Fprintf(&sb, " (%s)", strings.Join(parts, ", "))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// renderTier names a pushdown tier in plan text.
func renderTier(tier string) string {
	switch tier {
	case "summary":
		return "summary-answered"
	case "wholesale":
		return "run-wholesale"
	}
	return tier
}

func (n *PlanNode) render(sb *strings.Builder, branch, indent string) {
	if branch == "" {
		branch = "└─ "
	}
	sb.WriteString(indent + branch)
	switch n.Op {
	case "leaf":
		fmt.Fprintf(sb, "%s: %s", n.Pred, n.Access)
		if n.Reason != "" {
			fmt.Fprintf(sb, " (%s)", n.Reason)
		}
		if n.Selectivity >= 0 {
			fmt.Fprintf(sb, " est=%.3f", n.Selectivity)
		}
		fmt.Fprintf(sb, " → %d blocks in %d runs (%d exact)",
			n.CandidateBlocks, n.Runs, n.ExactBlocks)
		if n.Stats.Probes > 0 {
			fmt.Fprintf(sb, ", %d probes", n.Stats.Probes)
		}
	case "all":
		fmt.Fprintf(sb, "all rows → %d blocks in %d runs", n.CandidateBlocks, n.Runs)
	default:
		fmt.Fprintf(sb, "%s: %d candidate blocks in %d runs (%d exact)",
			n.Op, n.CandidateBlocks, n.Runs, n.ExactBlocks)
	}
	sb.WriteByte('\n')
	kidIndent := indent + "   "
	if branch == "├─ " {
		kidIndent = indent + "│  "
	}
	for _, sp := range n.SegmentDetails {
		sb.WriteString(kidIndent + "  · ")
		fmt.Fprintf(sb, "seg %d (%d rows): %s", sp.Segment, sp.Rows, sp.Access)
		if sp.Reason != "" {
			fmt.Fprintf(sb, " (%s)", sp.Reason)
		}
		if sp.Access != "pruned" {
			if sp.Selectivity >= 0 {
				fmt.Fprintf(sb, " est=%.3f", sp.Selectivity)
			}
			fmt.Fprintf(sb, " → %d blocks in %d runs (%d exact)",
				sp.CandidateBlocks, sp.Runs, sp.ExactBlocks)
			if sp.Stats.Probes > 0 {
				fmt.Fprintf(sb, ", %d probes", sp.Stats.Probes)
			}
		}
		sb.WriteByte('\n')
	}
	for i, kid := range n.Children {
		b := "├─ "
		if i == len(n.Children)-1 {
			b = "└─ "
		}
		kid.render(sb, b, kidIndent)
	}
}
