package table

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Plan is the rendered execution plan of a Query: what predicate.go's
// evaluator decided per leaf (imprints probe vs zonemap vs scan, the
// estimated selectivity behind that choice) and what each subtree's
// candidate-run list looked like after composition. Explain executes
// the index probes — the candidate-run statistics are real — but never
// materializes a row.
type Plan struct {
	Table       string
	Columns     []string // resolved projection
	Limit       int      // row cap; negative when the query has no limit
	TotalRows   int
	TotalBlocks int // row blocks of BlockRows rows
	Root        *PlanNode
	Stats       core.QueryStats // aggregated index-probe stats
	// FastCountRows is the number of live rows Count would tally
	// wholesale from the root's exact candidate runs (span minus a
	// deleted-bitmap popcount) — the count fast path's coverage.
	FastCountRows uint64
}

// PlanNode is one node of the plan tree, mirroring the predicate tree.
type PlanNode struct {
	Op     string // "and", "or", "andnot", "leaf", "all"
	Pred   string // leaf predicate rendering, e.g. `city in ["A", "N"]`
	Column string // leaf column name
	Access string // leaf access path: "imprints", "zonemap", "scan"
	Reason string // why a non-default path was chosen ("unselective")
	// Selectivity is the leaf's estimated selectivity (fraction of rows
	// expected to qualify) from the imprint histogram; negative when the
	// leaf has no imprint to estimate from (scan-only, zonemap).
	Selectivity float64
	// Runs / CandidateBlocks / ExactBlocks summarize the candidate-run
	// list this subtree produced: maximal runs, total candidate row
	// blocks, and how many of those are exact (no residual check).
	Runs            int
	CandidateBlocks uint64
	ExactBlocks     uint64
	Stats           core.QueryStats // leaf probe stats
	Children        []*PlanNode
}

// setRuns records a node's candidate-run summary.
func (n *PlanNode) setRuns(runs []core.CandidateRun) {
	n.Runs = len(runs)
	for _, r := range runs {
		n.CandidateBlocks += uint64(r.Count)
		if r.Exact {
			n.ExactBlocks += uint64(r.Count)
		}
	}
}

// opNode builds an inner plan node from its composed runs and children.
func opNode(op string, runs []core.CandidateRun, kids []*PlanNode) *PlanNode {
	n := &PlanNode{Op: op, Children: kids}
	n.setRuns(runs)
	return n
}

// Explain builds the query's execution plan without materializing rows.
func (q *Query) Explain() (*Plan, error) {
	q.t.mu.RLock()
	defer q.t.mu.RUnlock()
	names, _, err := q.projection()
	if err != nil {
		return nil, err
	}
	var st core.QueryStats
	ev, err := q.plan(&st)
	if err != nil {
		return nil, err
	}
	lim := -1
	if q.limited {
		lim = q.limit
	}
	return &Plan{
		Table:         q.t.name,
		Columns:       append([]string(nil), names...),
		Limit:         lim,
		TotalRows:     q.t.rows,
		TotalBlocks:   (q.t.rows + BlockRows - 1) / BlockRows,
		Root:          ev.plan,
		Stats:         st,
		FastCountRows: q.t.fastCountRows(ev.runs),
	}, nil
}

// String renders the plan as an indented tree, e.g.:
//
//	select qty, city from orders limit 10 (550000 rows, 8594 blocks of 64)
//	└─ or: 312 candidate blocks in 14 runs (88 exact)
//	   ├─ qty in [4900, 5100): imprints est=0.031 → 301 blocks in 12 runs (88 exact), 4211 probes
//	   └─ city prefix "Ams": imprints est=0.120 → 95 blocks in 3 runs (0 exact), 4211 probes
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "select %s from %s", strings.Join(p.Columns, ", "), p.Table)
	if p.Limit >= 0 {
		fmt.Fprintf(&sb, " limit %d", p.Limit)
	}
	fmt.Fprintf(&sb, " (%d rows, %d blocks of %d", p.TotalRows, p.TotalBlocks, BlockRows)
	if p.FastCountRows > 0 {
		fmt.Fprintf(&sb, ", count fast path: %d rows", p.FastCountRows)
	}
	sb.WriteString(")\n")
	p.Root.render(&sb, "", "")
	return sb.String()
}

func (n *PlanNode) render(sb *strings.Builder, branch, indent string) {
	if branch == "" {
		branch = "└─ "
	}
	sb.WriteString(indent + branch)
	switch n.Op {
	case "leaf":
		fmt.Fprintf(sb, "%s: %s", n.Pred, n.Access)
		if n.Reason != "" {
			fmt.Fprintf(sb, " (%s)", n.Reason)
		}
		if n.Selectivity >= 0 {
			fmt.Fprintf(sb, " est=%.3f", n.Selectivity)
		}
		fmt.Fprintf(sb, " → %d blocks in %d runs (%d exact)",
			n.CandidateBlocks, n.Runs, n.ExactBlocks)
		if n.Stats.Probes > 0 {
			fmt.Fprintf(sb, ", %d probes", n.Stats.Probes)
		}
	case "all":
		fmt.Fprintf(sb, "all rows → %d blocks in %d runs", n.CandidateBlocks, n.Runs)
	default:
		fmt.Fprintf(sb, "%s: %d candidate blocks in %d runs (%d exact)",
			n.Op, n.CandidateBlocks, n.Runs, n.ExactBlocks)
	}
	sb.WriteByte('\n')
	kidIndent := indent + "   "
	if branch == "├─ " {
		kidIndent = indent + "│  "
	}
	for i, kid := range n.Children {
		b := "├─ "
		if i == len(n.Children)-1 {
			b = "└─ "
		}
		kid.render(sb, b, kidIndent)
	}
}
