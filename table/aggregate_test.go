package table

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
)

// aggTestTable builds a four-segment table (SegmentRows 128) with an
// int64 qty, a float64 price, and a string city column.
func aggTestTable(t *testing.T, rows int) *Table {
	t.Helper()
	tb := NewWithOptions("agg", TableOptions{SegmentRows: 128})
	qty := make([]int64, rows)
	price := make([]float64, rows)
	city := make([]string, rows)
	cities := []string{"Amsterdam", "Berlin", "Cairo", "Delft"}
	for i := range qty {
		qty[i] = int64(i % 97)
		price[i] = float64(i%53) * 1.5
		city[i] = cities[i%len(cities)]
	}
	if err := AddColumn(tb, "qty", qty, Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := AddColumn(tb, "price", price, Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("city", city, Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestAggregateBasic(t *testing.T) {
	const rows = 500
	tb := aggTestTable(t, rows)

	res, st, err := tb.Select().Aggregate(Sum("qty"), Min("qty"), Max("qty"), Avg("price"), CountAll(), Min("city"), Max("city"))
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	var psum float64
	minQ, maxQ := int64(math.MaxInt64), int64(math.MinInt64)
	for i := 0; i < rows; i++ {
		q := int64(i % 97)
		sum += q
		minQ, maxQ = min(minQ, q), max(maxQ, q)
		psum += float64(i%53) * 1.5
	}
	if got := res.At(0); !got.Valid || !got.IsInt || got.Int != sum {
		t.Fatalf("sum(qty) = %+v, want %d", got, sum)
	}
	if got := res.At(1); got.Int != minQ {
		t.Fatalf("min(qty) = %+v, want %d", got, minQ)
	}
	if got := res.At(2); got.Int != maxQ {
		t.Fatalf("max(qty) = %+v, want %d", got, maxQ)
	}
	if got := res.At(3); math.Abs(got.Float-psum/rows) > 1e-9 {
		t.Fatalf("avg(price) = %+v, want %v", got, psum/rows)
	}
	if got := res.At(4); got.Int != rows || !got.Valid {
		t.Fatalf("count(*) = %+v, want %d", got, rows)
	}
	if got := res.At(5); !got.IsStr || got.Str != "Amsterdam" {
		t.Fatalf("min(city) = %+v, want Amsterdam", got)
	}
	if got := res.At(6); got.Str != "Delft" {
		t.Fatalf("max(city) = %+v, want Delft", got)
	}
	if res.Rows != rows {
		t.Fatalf("res.Rows = %d, want %d", res.Rows, rows)
	}
	// Select-all over clean segments: min/max/count answer from
	// summaries, sum/avg fold wholesale; nothing is scanned row by row.
	if st.SummaryAggRows == 0 || st.WholesaleAggRows == 0 {
		t.Fatalf("expected summary and wholesale pushdown, stats %+v", st)
	}
	if st.Comparisons != 0 {
		t.Fatalf("select-all aggregation ran %d residual comparisons", st.Comparisons)
	}
}

func TestAggregateWithPredicate(t *testing.T) {
	const rows = 500
	tb := aggTestTable(t, rows)
	pred := Range[int64]("qty", 10, 50)

	res, _, err := tb.Select().Where(pred).Aggregate(Sum("qty"), CountAll(), Avg("qty"))
	if err != nil {
		t.Fatal(err)
	}
	var sum, n int64
	for i := 0; i < rows; i++ {
		q := int64(i % 97)
		if q >= 10 && q < 50 {
			sum += q
			n++
		}
	}
	if res.At(0).Int != sum || res.At(1).Int != n {
		t.Fatalf("got sum=%d count=%d, want %d/%d", res.At(0).Int, res.At(1).Int, sum, n)
	}
	if got, want := res.At(2).Float, float64(sum)/float64(n); math.Abs(got-want) > 1e-9 {
		t.Fatalf("avg = %v, want %v", got, want)
	}

	// Empty selection: min/max/avg invalid, sum invalid, count valid 0.
	res, _, err = tb.Select().Where(Equals[int64]("qty", -5)).Aggregate(Min("qty"), Sum("qty"), CountAll())
	if err != nil {
		t.Fatal(err)
	}
	if res.At(0).Valid || res.At(1).Valid {
		t.Fatalf("empty selection produced valid min/sum: %v", res)
	}
	if !res.At(2).Valid || res.At(2).Int != 0 {
		t.Fatalf("empty selection count = %+v, want 0", res.At(2))
	}
}

// TestAggregateSummaryNeverTouchesSlab proves the acceptance criterion
// directly: a fully-selected, delete-free segment answers Min/Max from
// its summary. Corrupting the sealed segment's value slab (bypassing
// Update, so the summary stays) must not change the answer — the slab
// was never read.
func TestAggregateSummaryNeverTouchesSlab(t *testing.T) {
	tb := aggTestTable(t, 500)
	cs := tb.cols["qty"].(*colState[int64])

	before, st, err := tb.Select().Aggregate(Min("qty"), Max("qty"), CountAll())
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(3 * 500); st.SummaryAggRows != want {
		t.Fatalf("SummaryAggRows = %d, want %d (3 aggs × 500 rows)", st.SummaryAggRows, want)
	}
	if st.WholesaleAggRows != 0 {
		t.Fatalf("WholesaleAggRows = %d, want 0", st.WholesaleAggRows)
	}

	// Poison every value of the first (sealed) segment behind the
	// summary's back.
	poisoned := cs.segs[0].vals
	saved := append([]int64(nil), poisoned...)
	for i := range poisoned {
		poisoned[i] = math.MaxInt64
	}
	after, _, err := tb.Select().Aggregate(Min("qty"), Max("qty"), CountAll())
	if err != nil {
		t.Fatal(err)
	}
	copy(poisoned, saved)
	if after.At(0) != before.At(0) || after.At(1) != before.At(1) || after.At(2) != before.At(2) {
		t.Fatalf("summary-answered aggregate read the value slab: %v vs %v", after, before)
	}

	// ExplainAggregate agrees: every segment summary-answered.
	plan, err := tb.Select().ExplainAggregate(Min("qty"), Max("qty"), CountAll())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.AggSegments) != tb.Segments() {
		t.Fatalf("AggSegments = %d, want %d", len(plan.AggSegments), tb.Segments())
	}
	for _, ap := range plan.AggSegments {
		if ap.Tier != "summary" {
			t.Fatalf("segment %d tier = %q, want summary", ap.Segment, ap.Tier)
		}
	}
	if !strings.Contains(plan.String(), "summary-answered") {
		t.Fatalf("plan text misses pushdown lines:\n%s", plan)
	}
}

// TestAggregateWidenedSummary: after an in-place update the summary may
// over-cover, so Min/Max must fall back to the value slab; Maintain's
// rebuild restores the summary tier.
func TestAggregateWidenedSummary(t *testing.T) {
	tb := aggTestTable(t, 500)
	// Raise one value, then lower it back: the summary now claims max
	// >= 1000 even though no row carries it.
	if err := Update(tb, "qty", 7, int64(1000)); err != nil {
		t.Fatal(err)
	}
	if err := Update(tb, "qty", 7, int64(3)); err != nil {
		t.Fatal(err)
	}
	res, st, err := tb.Select().Aggregate(Max("qty"))
	if err != nil {
		t.Fatal(err)
	}
	if res.At(0).Int != 96 {
		t.Fatalf("max after widen = %d, want 96 (summary over-cover leaked)", res.At(0).Int)
	}
	// Segment 0 can no longer summary-answer; the others still do.
	if st.SummaryAggRows == 0 || st.WholesaleAggRows == 0 {
		t.Fatalf("expected mixed tiers after widening, stats %+v", st)
	}
	// A rebuild recomputes the summary exactly (the tiny positive limit
	// rebuilds any segment whose index absorbed an update).
	tb.Maintain(MaintainOptions{SaturationLimit: 1e-12})
	res2, st2, err := tb.Select().Aggregate(Max("qty"))
	if err != nil {
		t.Fatal(err)
	}
	if res2.At(0).Int != 96 || st2.WholesaleAggRows != 0 {
		t.Fatalf("post-rebuild max=%d stats %+v, want summary-only", res2.At(0).Int, st2)
	}
}

func TestAggregateDeletesDisableWholesaleCount(t *testing.T) {
	tb := aggTestTable(t, 500)
	for _, id := range []int{0, 130, 131, 499} {
		if err := tb.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	res, _, err := tb.Select().Aggregate(CountAll(), Sum("qty"))
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for i := 0; i < 500; i++ {
		switch i {
		case 0, 130, 131, 499:
			continue
		}
		sum += int64(i % 97)
	}
	if res.At(0).Int != 496 || res.At(1).Int != sum {
		t.Fatalf("with deletes: count=%d sum=%d, want 496/%d", res.At(0).Int, res.At(1).Int, sum)
	}
}

func TestAggregateLimit(t *testing.T) {
	tb := aggTestTable(t, 500)
	// First 10 qualifying rows in id order.
	res, _, err := tb.Select().Where(AtLeast[int64]("qty", 1)).Limit(10).Aggregate(Sum("qty"), CountAll())
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	n := 0
	for i := 0; i < 500 && n < 10; i++ {
		if q := int64(i % 97); q >= 1 {
			sum += q
			n++
		}
	}
	if res.At(1).Int != 10 || res.At(0).Int != sum {
		t.Fatalf("limited aggregate: count=%d sum=%d, want 10/%d", res.At(1).Int, res.At(0).Int, sum)
	}
	// Limit(0) selects nothing.
	res, _, err = tb.Select().Limit(0).Aggregate(CountAll())
	if err != nil || res.At(0).Int != 0 {
		t.Fatalf("Limit(0) aggregate = %v, %v", res, err)
	}
}

func TestAggregateErrors(t *testing.T) {
	tb := aggTestTable(t, 200)
	if _, _, err := tb.Select().Aggregate(); err == nil {
		t.Fatal("no specs accepted")
	}
	if _, _, err := tb.Select().Aggregate(Sum("nope")); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, _, err := tb.Select().Aggregate(Sum("city")); err == nil {
		t.Fatal("sum over string accepted")
	}
	if _, _, err := tb.Select().OrderBy(Desc("qty")).Aggregate(Sum("qty")); err == nil {
		t.Fatal("OrderBy + Aggregate accepted")
	}
	if _, _, err := tb.Select().GroupBy("price").Aggregate(CountAll()); err == nil {
		t.Fatal("float GroupBy key accepted")
	}
	if _, _, err := tb.Select().GroupBy("nope").Aggregate(CountAll()); err == nil {
		t.Fatal("unknown GroupBy key accepted")
	}
	if _, _, err := tb.Select().Limit(5).GroupBy("city").Aggregate(CountAll()); err == nil {
		t.Fatal("Limit + GroupBy accepted")
	}
	if _, _, err := tb.Select("nope").Aggregate(CountAll()); err == nil {
		t.Fatal("bad projection accepted")
	}
}

func TestGroupBy(t *testing.T) {
	const rows = 500
	tb := aggTestTable(t, rows)
	cities := []string{"Amsterdam", "Berlin", "Cairo", "Delft"}

	// String key, with a predicate.
	res, _, err := tb.Select().Where(LessThan[int64]("qty", 40)).GroupBy("city").Aggregate(CountAll(), Sum("qty"), Max("price"))
	if err != nil {
		t.Fatal(err)
	}
	type acc struct {
		n   uint64
		sum int64
		mx  float64
	}
	want := map[string]*acc{}
	for i := 0; i < rows; i++ {
		if q := int64(i % 97); q < 40 {
			c := cities[i%4]
			a := want[c]
			if a == nil {
				a = &acc{}
				want[c] = a
			}
			a.n++
			a.sum += q
			a.mx = max(a.mx, float64(i%53)*1.5)
		}
	}
	if len(res.Groups) != len(want) {
		t.Fatalf("groups = %d, want %d", len(res.Groups), len(want))
	}
	for i, g := range res.Groups {
		w := want[g.Key.(string)]
		if w == nil || g.Rows != w.n || g.Aggs[0].Int != int64(w.n) || g.Aggs[1].Int != w.sum || g.Aggs[2].Float != w.mx {
			t.Fatalf("group %v = rows %d aggs %v, want %+v", g.Key, g.Rows, g.Aggs, w)
		}
		if i > 0 && !(res.Groups[i-1].Key.(string) < g.Key.(string)) {
			t.Fatalf("groups not sorted: %v", res.Groups)
		}
	}
	if _, ok := res.Find("Berlin"); !ok {
		t.Fatal("Find(Berlin) missed")
	}

	// Integer key.
	ires, _, err := tb.Select().GroupBy("qty").Aggregate(CountAll())
	if err != nil {
		t.Fatal(err)
	}
	if len(ires.Groups) != 97 {
		t.Fatalf("int groups = %d, want 97", len(ires.Groups))
	}
	if k := ires.Groups[0].Key.(int64); k != 0 {
		t.Fatalf("first int group key = %d, want 0", k)
	}
}

// TestGroupByDictionaryRemap pins the per-segment dictionary remap: two
// segments whose dictionaries assign the same string different codes
// must merge into one global group.
func TestGroupByDictionaryRemap(t *testing.T) {
	tb := NewWithOptions("remap", TableOptions{SegmentRows: 64})
	// Segment 0: codes {apple:0, zebra:1}; segment 1: codes
	// {mango:0, zebra:1} — "zebra" has code 1 in one and the same code
	// space would alias "apple"/"mango" without the remap.
	vals := make([]string, 128)
	for i := 0; i < 64; i++ {
		if i%2 == 0 {
			vals[i] = "apple"
		} else {
			vals[i] = "zebra"
		}
	}
	for i := 64; i < 128; i++ {
		if i%2 == 0 {
			vals[i] = "mango"
		} else {
			vals[i] = "zebra"
		}
	}
	if err := tb.AddStringColumn("s", vals, Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	ones := make([]int64, 128)
	for i := range ones {
		ones[i] = 1
	}
	if err := AddColumn(tb, "one", ones, NoIndex, core.Options{}); err != nil {
		t.Fatal(err)
	}
	res, _, err := tb.Select().GroupBy("s").Aggregate(CountAll(), Sum("one"))
	if err != nil {
		t.Fatal(err)
	}
	wantGroups := map[string]uint64{"apple": 32, "mango": 32, "zebra": 64}
	if len(res.Groups) != 3 {
		t.Fatalf("groups = %v, want 3", res.Groups)
	}
	for _, g := range res.Groups {
		if g.Rows != wantGroups[g.Key.(string)] || g.Aggs[1].Int != int64(g.Rows) {
			t.Fatalf("group %v = %d rows (sum %d), want %d", g.Key, g.Rows, g.Aggs[1].Int, wantGroups[g.Key.(string)])
		}
	}
}

func TestOrderByTopK(t *testing.T) {
	const rows = 500
	tb := aggTestTable(t, rows)

	// Descending top-10 by price, ties broken by ascending id.
	ids, _, err := tb.Select().OrderBy(Desc("price")).Limit(10).IDs()
	if err != nil {
		t.Fatal(err)
	}
	var all []rankEnt
	for i := 0; i < rows; i++ {
		all = append(all, rankEnt{float64(i%53) * 1.5, i})
	}
	wantTop := topSort(all, true)[:10]
	if len(ids) != 10 {
		t.Fatalf("top-k returned %d ids", len(ids))
	}
	for i, id := range ids {
		if int(id) != wantTop[i].id {
			t.Fatalf("rank %d: id %d, want %d", i, id, wantTop[i].id)
		}
	}

	// Ascending, unbounded (full sort), with a predicate.
	ids, _, err = tb.Select().Where(LessThan[int64]("qty", 5)).OrderBy(Asc("price")).IDs()
	if err != nil {
		t.Fatal(err)
	}
	var filtered []rankEnt
	for i := 0; i < rows; i++ {
		if int64(i%97) < 5 {
			filtered = append(filtered, rankEnt{float64(i%53) * 1.5, i})
		}
	}
	wantAll := topSort(filtered, false)
	if len(ids) != len(wantAll) {
		t.Fatalf("ordered ids = %d, want %d", len(ids), len(wantAll))
	}
	for i, id := range ids {
		if int(id) != wantAll[i].id {
			t.Fatalf("rank %d: id %d, want %d", i, id, wantAll[i].id)
		}
	}

	// String ordering spans per-segment dictionaries.
	sids, _, err := tb.Select().OrderBy(Asc("city")).Limit(3).IDs()
	if err != nil {
		t.Fatal(err)
	}
	if want := []uint32{0, 4, 8}; len(sids) != 3 || sids[0] != want[0] || sids[1] != want[1] || sids[2] != want[2] {
		t.Fatalf("city top-3 = %v, want %v", sids, want)
	}

	// Rows streams in rank order.
	got := []int{}
	q := tb.Select("price").OrderBy(Desc("price")).Limit(5)
	for id, row := range q.Rows() {
		got = append(got, id)
		if _, ok := row.Lookup("price"); !ok {
			t.Fatal("price not projected in ordered row")
		}
	}
	if q.Err() != nil {
		t.Fatal(q.Err())
	}
	for i := range got {
		if got[i] != wantTop[i].id {
			t.Fatalf("ordered Rows rank %d = id %d, want %d", i, got[i], wantTop[i].id)
		}
	}

	// Unknown order column errors.
	if _, _, err := tb.Select().OrderBy(Asc("nope")).IDs(); err == nil {
		t.Fatal("unknown order column accepted")
	}
	// Plan mentions the ordering.
	plan, err := tb.Select().OrderBy(Desc("price")).Limit(5).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.OrderBy != "price desc" || !strings.Contains(plan.String(), "order by price desc") {
		t.Fatalf("plan OrderBy = %q", plan.OrderBy)
	}
}

// rankEnt is the oracle's (value, id) pair for ordering tests.
type rankEnt struct {
	p  float64
	id int
}

// topSort is the test oracle's ranking: value direction, ties by id.
func topSort(all []rankEnt, desc bool) []rankEnt {
	out := append([]rankEnt(nil), all...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.p != b.p {
			if desc {
				return a.p > b.p
			}
			return a.p < b.p
		}
		return a.id < b.id
	})
	return out
}

func TestAggregateParallelismDeterminism(t *testing.T) {
	tb := aggTestTable(t, 2000)
	pred := Or(Range[int64]("qty", 5, 60), StrEquals("city", "Cairo"))
	var base *AggResult
	var baseG *GroupedResult
	var baseIDs []uint32
	for _, par := range []int{1, 2, 8} {
		opts := SelectOptions{Parallelism: par}
		res, _, err := tb.Select().Where(pred).Options(opts).Aggregate(Sum("price"), Min("qty"), Max("city"), Avg("price"), CountAll())
		if err != nil {
			t.Fatal(err)
		}
		g, _, err := tb.Select().Where(pred).Options(opts).GroupBy("city").Aggregate(Sum("price"), CountAll())
		if err != nil {
			t.Fatal(err)
		}
		ids, _, err := tb.Select().Where(pred).Options(opts).OrderBy(Desc("price")).Limit(25).IDs()
		if err != nil {
			t.Fatal(err)
		}
		if par == 1 {
			base, baseG, baseIDs = res, g, ids
			continue
		}
		// Byte-identical: float sums merge in segment order regardless
		// of parallelism.
		if fmt.Sprintf("%v", res.Values()) != fmt.Sprintf("%v", base.Values()) {
			t.Fatalf("parallelism %d changed aggregates:\n%v\nvs\n%v", par, res, base)
		}
		if fmt.Sprintf("%v", g.Groups) != fmt.Sprintf("%v", baseG.Groups) {
			t.Fatalf("parallelism %d changed groups", par)
		}
		if fmt.Sprintf("%v", ids) != fmt.Sprintf("%v", baseIDs) {
			t.Fatalf("parallelism %d changed top-k ids", par)
		}
	}
}

func TestAggregatePrepared(t *testing.T) {
	tb := aggTestTable(t, 600)
	p, err := tb.Prepare(RangeP("qty", Param[int64]("lo"), Param[int64]("hi")), SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, bounds := range [][2]int64{{10, 50}, {0, 97}} {
		res, _, err := p.Bind("lo", bounds[0]).Bind("hi", bounds[1]).Aggregate(Sum("qty"), CountAll())
		if err != nil {
			t.Fatal(err)
		}
		adhoc, _, err := tb.Select().Where(Range[int64]("qty", bounds[0], bounds[1])).Aggregate(Sum("qty"), CountAll())
		if err != nil {
			t.Fatal(err)
		}
		if res.At(0) != adhoc.At(0) || res.At(1) != adhoc.At(1) {
			t.Fatalf("prepared aggregate diverged from ad-hoc: %v vs %v", res, adhoc)
		}
	}
	// Grouped and ordered executions work on prepared statements too.
	g, _, err := p.Bind("lo", int64(0)).Bind("hi", int64(97)).GroupBy("city").Aggregate(CountAll())
	if err != nil || len(g.Groups) != 4 {
		t.Fatalf("prepared GroupBy: %v, %v", g, err)
	}
	ids, _, err := p.Bind("lo", int64(0)).Bind("hi", int64(97)).OrderBy(Desc("qty")).Limit(5).IDs()
	if err != nil || len(ids) != 5 {
		t.Fatalf("prepared top-k: %v, %v", ids, err)
	}
}

func TestRowLookup(t *testing.T) {
	tb := aggTestTable(t, 100)
	for _, row := range tb.Select("qty").Limit(1).Rows() {
		if v, ok := row.Lookup("qty"); !ok || v.(int64) != 0 {
			t.Fatalf("Lookup(qty) = %v, %v", v, ok)
		}
		if v, ok := row.Lookup("price"); ok || v != nil {
			t.Fatalf("Lookup(price) on unprojected column = %v, %v", v, ok)
		}
		if row.Get("price") != nil {
			t.Fatal("Get(price) on unprojected column != nil")
		}
	}
}

func TestReuseRowsAllocs(t *testing.T) {
	const rows = 1000
	tb := aggTestTable(t, rows)
	iterate := func(opts SelectOptions) float64 {
		q := tb.Select("qty", "price").Options(opts)
		return testing.AllocsPerRun(10, func() {
			n := 0
			for _, row := range q.Rows() {
				if row.Value(0) == nil {
					t.Fatal("nil value")
				}
				n++
			}
			if n != rows {
				t.Fatalf("iterated %d rows", n)
			}
		})
	}
	plain := iterate(SelectOptions{Parallelism: 1})
	reused := iterate(SelectOptions{Parallelism: 1, ReuseRows: true})
	// Without reuse, every row allocates its value slice: ≥ rows allocs.
	// With reuse the per-row slice is gone; only per-query and boxing
	// allocations remain. Pin the gap, with slack for the runtime.
	if plain < rows {
		t.Fatalf("plain iteration made %.0f allocs, expected ≥ %d", plain, rows)
	}
	if reused > plain-float64(rows)/2 {
		t.Fatalf("ReuseRows made %.0f allocs vs %.0f plain — buffer not reused", reused, plain)
	}
}

// BenchmarkAggregate measures the pushdown tiers on a multi-segment
// table: the summary tier (select-all min/max/count — no slab reads),
// the wholesale tier (select-all sum), and the scanned tier (an
// unselective band forcing residual checks).
func BenchmarkAggregate(b *testing.B) {
	n := 512 * 1024
	price := make([]float64, n)
	qty := make([]int64, n)
	for i := range price {
		price[i] = float64((i*2654435761)%100000) / 100
		qty[i] = int64(i % 1000)
	}
	tb := New("bench")
	if err := AddColumn(tb, "price", price, Imprints, core.Options{Seed: 1}); err != nil {
		b.Fatal(err)
	}
	if err := AddColumn(tb, "qty", qty, Imprints, core.Options{Seed: 2}); err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name  string
		pred  Predicate
		specs []AggSpec
	}{
		{"summary", nil, []AggSpec{Min("price"), Max("price"), CountAll()}},
		{"wholesale", nil, []AggSpec{Sum("price"), Avg("qty")}},
		{"scanned", Range[float64]("price", 100, 600), []AggSpec{Sum("price"), CountAll()}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			q := tb.Select().Where(c.pred).Options(SelectOptions{Parallelism: 4})
			for i := 0; i < b.N; i++ {
				if _, _, err := q.Aggregate(c.specs...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("topk", func(b *testing.B) {
		q := tb.Select().OrderBy(Desc("price")).Limit(10).Options(SelectOptions{Parallelism: 4})
		for i := 0; i < b.N; i++ {
			if _, _, err := q.IDs(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("groupby", func(b *testing.B) {
		q := tb.Select().Options(SelectOptions{Parallelism: 4})
		for i := 0; i < b.N; i++ {
			if _, _, err := q.GroupBy("qty").Aggregate(CountAll(), Sum("price")); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestOrderByNaN: NaN breaks <'s totality, so the ranking defines it
// to sort after every real value in either direction — the top-k must
// never return a NaN row while real candidates remain.
func TestOrderByNaN(t *testing.T) {
	tb := NewWithOptions("nan", TableOptions{SegmentRows: 64})
	vals := make([]float64, 130)
	for i := range vals {
		vals[i] = float64(i)
	}
	vals[0] = math.NaN() // first row of segment 0 seeds the heap
	vals[70] = math.NaN()
	if err := AddColumn(tb, "v", vals, Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	ids, _, err := tb.Select().OrderBy(Desc("v")).Limit(3).IDs()
	if err != nil {
		t.Fatal(err)
	}
	if want := []uint32{129, 128, 127}; fmt.Sprint(ids) != fmt.Sprint(want) {
		t.Fatalf("desc top-3 with NaNs = %v, want %v", ids, want)
	}
	ids, _, err = tb.Select().OrderBy(Asc("v")).IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 130 || ids[0] != 1 || ids[128] != 0 || ids[129] != 70 {
		t.Fatalf("asc full order with NaNs = first %d, last two %v %v", ids[0], ids[128], ids[129])
	}
}

// TestExplainAggregateMirrorsExecutor: plans must not advertise
// pushdown an execution would not run — OrderBy is rejected exactly
// like Aggregate rejects it, and a Limit-ed aggregation (which folds
// row by row through the id path) carries no tier lines.
func TestExplainAggregateMirrorsExecutor(t *testing.T) {
	tb := aggTestTable(t, 300)
	if _, err := tb.Select().OrderBy(Desc("qty")).ExplainAggregate(Sum("qty")); err == nil {
		t.Fatal("ExplainAggregate accepted OrderBy that Aggregate rejects")
	}
	plan, err := tb.Select().Limit(10).ExplainAggregate(Sum("qty"))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.AggSegments) != 0 {
		t.Fatalf("Limit-ed aggregate plan advertises %d pushdown segments", len(plan.AggSegments))
	}
	if plan.Limit != 10 || len(plan.Aggregates) != 1 {
		t.Fatalf("plan limit/aggs = %d/%v", plan.Limit, plan.Aggregates)
	}
}
