package table

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Sharded aggregation, grouping and explain (see shardexec.go for the
// execution frame). Aggregate partials merge in ascending
// global-segment order and each shard's delta partial folds once
// afterwards in shard order, so results are deterministic at every
// parallelism level and — on densely-filled tables — identical to the
// unsharded layout.

// shardResolveAggs validates the specs against every shard (the
// schemas are identical, so per-shard binds differ only in their
// column handles).
func (q *Query) shardResolveAggs(specs []AggSpec) ([][]aggBind, error) {
	sh := q.t.shard
	kbinds := make([][]aggBind, sh.nshards)
	for c, kid := range sh.kids {
		binds, err := kid.resolveAggs(specs)
		if err != nil {
			return nil, err
		}
		kbinds[c] = binds
	}
	return kbinds, nil
}

// shardAggregate is Aggregate over a sharded table.
func (q *Query) shardAggregate(specs []AggSpec) (*AggResult, core.QueryStats, error) {
	q.t.mu.RLock()
	defer q.t.mu.RUnlock()
	q.t.shardRLock()
	defer q.t.shardRUnlock()
	var st core.QueryStats
	if q.order != nil {
		return nil, st, fmt.Errorf("table %s: OrderBy does not apply to Aggregate (aggregates are order-independent)", q.t.name)
	}
	kbinds, err := q.shardResolveAggs(specs)
	if err != nil {
		return nil, st, err
	}
	if err := q.shardCheckProjection(); err != nil {
		return nil, st, err
	}
	binds := kbinds[0]
	res := &AggResult{vals: make([]AggValue, len(binds))}
	merged := make([]aggPartial, len(binds))
	finish := func() *AggResult {
		for i, b := range binds {
			res.vals[i] = merged[i].value(b.spec)
		}
		return res
	}
	if q.limited && q.limit == 0 {
		return finish(), st, nil
	}
	se, err := q.shardBind()
	if err != nil {
		return nil, st, err
	}
	if q.limited {
		return q.shardLimitedAggregate(se, kbinds, merged, finish, &st)
	}
	if err := se.forEachUnit(q,
		func(i int) segOut {
			u := se.units[i]
			return se.kids[u.c].aggSegment(se.ens[u.c], u.lseg, kbinds[u.c])
		},
		func(i int, o segOut) bool {
			st.Add(o.st)
			res.Rows += o.count
			for i := range merged {
				merged[i].mergeInto(binds[i].spec.op, o.aggs[i])
			}
			return true
		}); err != nil {
		return nil, st, q.t.abortErr(err)
	}
	for c := range se.views {
		res.Rows += se.kids[c].deltaAggFold(se.views[c], se.ens[c], kbinds[c], merged, res.Rows, &st)
	}
	return finish(), st, nil
}

// deltaEnt is one qualifying buffered delta row addressed by its
// global id, for merges that must interleave delta rows with sealed
// rows in id order.
type deltaEnt struct {
	gid uint32
	c   int
	row []any
}

// deltaEntries collects the qualifying delta rows of every shard,
// ascending by global id.
//
//imprintvet:locks held=kid.R
func (se *shardExec) deltaEntries(st *core.QueryStats) []deltaEnt {
	var out []deltaEnt
	for c, view := range se.views {
		if view == nil {
			continue
		}
		match := view.matcher(se.ens[c])
		view.scan(match, st, func(id int, row []any) bool {
			out = append(out, deltaEnt{gid: uint32(se.sh.gidOf(c, id)), c: c, row: row})
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].gid < out[j].gid })
	return out
}

// shardLimitedAggregate folds the first q.limit qualifying rows in
// ascending global-id order: sealed ids stream unit by unit with each
// pending delta row folded before the first sealed id that exceeds it
// (sharded delta ids interleave with sealed ids, unlike the unsharded
// append-only tail).
//
//imprintvet:locks held=mu.R,kid.R
func (q *Query) shardLimitedAggregate(se *shardExec, kbinds [][]aggBind, merged []aggPartial, finish func() *AggResult, st *core.QueryStats) (*AggResult, core.QueryStats, error) {
	binds := kbinds[0]
	dents := se.deltaEntries(st)
	dcis := make([][]int, len(se.views))
	for c, view := range se.views {
		if view == nil {
			continue
		}
		dcis[c] = make([]int, len(binds))
		for i, b := range binds {
			if b.col != nil {
				dcis[c][i] = view.colIdx(b.spec.col)
			}
		}
	}
	var dAccs []deltaAgg
	var drows uint64
	foldDelta := func(e deltaEnt) {
		if dAccs == nil {
			dAccs = make([]deltaAgg, len(binds))
			for i, b := range binds {
				if b.col != nil {
					dAccs[i] = b.col.deltaAgg(b.spec.op)
				}
			}
		}
		for i, acc := range dAccs {
			if acc != nil {
				acc.add(e.row[dcis[e.c][i]])
			}
		}
		drows++
	}
	taken := 0
	var rows uint64
	di := 0
	err := se.forEachUnit(q,
		func(i int) segOut {
			u := se.units[i]
			return se.kids[u.c].collectIDs(se.ens[u.c], u.lseg)
		},
		func(ui int, o segOut) bool {
			u := se.units[ui]
			st.Add(o.st)
			defer putIDScratch(o.ids)
			shift := se.gidShift(u)
			base := uint32(u.lseg * q.t.segRows)
			var accs []segAgg
			var segTaken uint64
			for _, id := range *o.ids {
				gid := id + shift
				for di < len(dents) && dents[di].gid < gid && taken < q.limit {
					foldDelta(dents[di])
					di++
					taken++
					rows++
				}
				if taken >= q.limit {
					break
				}
				if accs == nil {
					accs = make([]segAgg, len(binds))
					for i, b := range kbinds[u.c] {
						if b.col != nil {
							accs[i] = b.col.aggAcc(b.spec.op, u.lseg)
						}
					}
				}
				for _, acc := range accs {
					if acc != nil {
						acc.addRow(id - base)
					}
				}
				segTaken++
				taken++
				rows++
			}
			if segTaken > 0 {
				for i, acc := range accs {
					if acc != nil {
						merged[i].mergeInto(binds[i].spec.op, acc.partial())
					} else {
						merged[i].mergeInto(binds[i].spec.op, aggPartial{rows: segTaken})
					}
				}
			}
			return taken < q.limit
		})
	if err != nil {
		return nil, *st, q.t.abortErr(err)
	}
	for ; di < len(dents) && taken < q.limit; di++ {
		foldDelta(dents[di])
		taken++
		rows++
	}
	if drows > 0 {
		for i := range merged {
			if dAccs[i] != nil {
				merged[i].mergeInto(binds[i].spec.op, dAccs[i].partial())
			} else {
				merged[i].mergeInto(binds[i].spec.op, aggPartial{rows: drows})
			}
		}
	}
	res := finish()
	res.Rows = rows
	return res, *st, nil
}

// shardAggregate is GroupBy.Aggregate over a sharded table: the
// unchanged per-segment grouping worker per unit, group partials
// merged in global-segment order, each shard's delta groups folded
// once afterwards, final groups sorted by key.
func (g *GroupedQuery) shardAggregate(specs []AggSpec) (*GroupedResult, core.QueryStats, error) {
	q := g.q
	t := q.t
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.shardRLock()
	defer t.shardRUnlock()
	var st core.QueryStats
	if q.order != nil {
		return nil, st, fmt.Errorf("table %s: OrderBy does not apply to GroupBy aggregation", t.name)
	}
	if q.limited && q.limit > 0 {
		return nil, st, fmt.Errorf("table %s: Limit does not apply to GroupBy aggregation (drop the limit or use Limit(0))", t.name)
	}
	sh := t.shard
	kbinds, err := q.shardResolveAggs(specs)
	if err != nil {
		return nil, st, err
	}
	if err := q.shardCheckProjection(); err != nil {
		return nil, st, err
	}
	keyCols := make([]anyColumn, sh.nshards)
	for c, kid := range sh.kids {
		keyCol, ok := kid.cols[g.key]
		if !ok {
			return nil, st, fmt.Errorf("table %s: no column %q", t.name, g.key)
		}
		if err := keyCol.groupCheck(); err != nil {
			return nil, st, fmt.Errorf("table %s: %w", t.name, err)
		}
		keyCols[c] = keyCol
	}
	res := &GroupedResult{Key: g.key}
	if q.limited && q.limit == 0 {
		return res, st, nil
	}
	se, err := q.shardBind()
	if err != nil {
		return nil, st, err
	}
	kgs := make([]*GroupedQuery, sh.nshards)
	for c := range sh.kids {
		kgs[c] = &GroupedQuery{q: se.kids[c], key: g.key}
	}
	binds := kbinds[0]
	type mergedGroup struct {
		rows  uint64
		parts []aggPartial
	}
	merged := map[groupKey]*mergedGroup{}
	if err := se.forEachUnit(q,
		func(i int) segOut {
			u := se.units[i]
			return kgs[u.c].groupSegment(se.ens[u.c], u.lseg, kbinds[u.c], keyCols[u.c])
		},
		func(i int, o segOut) bool {
			st.Add(o.st)
			for _, gr := range o.groups {
				mg := merged[gr.key]
				if mg == nil {
					mg = &mergedGroup{parts: make([]aggPartial, len(binds))}
					merged[gr.key] = mg
				}
				mg.rows += gr.rows
				for i := range gr.parts {
					mg.parts[i].mergeInto(binds[i].spec.op, gr.parts[i])
				}
			}
			return true
		}); err != nil {
		return nil, st, t.abortErr(err)
	}
	for c, view := range se.views {
		if view == nil {
			continue
		}
		cbinds := kbinds[c]
		match := view.matcher(se.ens[c])
		kci := view.colIdx(g.key)
		cis := make([]int, len(cbinds))
		for i, b := range cbinds {
			if b.col != nil {
				cis[i] = view.colIdx(b.spec.col)
			}
		}
		type deltaGroup struct {
			rows uint64
			accs []deltaAgg
		}
		dgroups := map[groupKey]*deltaGroup{}
		view.scan(match, &st, func(_ int, row []any) bool {
			k := keyCols[c].deltaGroupKey(row[kci])
			dg := dgroups[k]
			if dg == nil {
				dg = &deltaGroup{accs: make([]deltaAgg, len(cbinds))}
				for i, b := range cbinds {
					if b.col != nil {
						dg.accs[i] = b.col.deltaAgg(b.spec.op)
					}
				}
				dgroups[k] = dg
			}
			dg.rows++
			for i, acc := range dg.accs {
				if acc != nil {
					acc.add(row[cis[i]])
				}
			}
			return true
		})
		// Fold the shard's delta groups in deterministic key order (map
		// iteration order would leak into float merge order otherwise).
		dkeys := make([]groupKey, 0, len(dgroups))
		for k := range dgroups {
			dkeys = append(dkeys, k)
		}
		sort.Slice(dkeys, func(i, j int) bool { return dkeys[i].less(dkeys[j]) })
		for _, k := range dkeys {
			dg := dgroups[k]
			mg := merged[k]
			if mg == nil {
				mg = &mergedGroup{parts: make([]aggPartial, len(cbinds))}
				merged[k] = mg
			}
			mg.rows += dg.rows
			for i := range cbinds {
				if dg.accs[i] != nil {
					mg.parts[i].mergeInto(binds[i].spec.op, dg.accs[i].partial())
				} else {
					mg.parts[i].mergeInto(binds[i].spec.op, aggPartial{rows: dg.rows})
				}
			}
		}
	}
	keys := make([]groupKey, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	res.Groups = make([]Group, len(keys))
	for gi, k := range keys {
		mg := merged[k]
		grp := Group{Key: k.value(), Rows: mg.rows, Aggs: make([]AggValue, len(binds))}
		for i, b := range binds {
			grp.Aggs[i] = mg.parts[i].value(b.spec)
		}
		res.Groups[gi] = grp
	}
	return res, st, nil
}

// shardExplain builds the plan of a sharded execution: every (shard,
// local segment) unit is evaluated like a real execution and the
// per-unit plans merge into one tree with per-unit breakdowns labeled
// by global segment. withAggs distinguishes ExplainAggregate (which
// validates its specs like Aggregate) from plain Explain.
func (q *Query) shardExplain(specs []AggSpec, withAggs bool) (*Plan, error) {
	t := q.t
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.shardRLock()
	defer t.shardRUnlock()
	sh := t.shard
	var kbinds [][]aggBind
	if withAggs {
		if q.order != nil {
			return nil, fmt.Errorf("table %s: OrderBy does not apply to Aggregate (aggregates are order-independent)", t.name)
		}
		var err error
		if kbinds, err = q.shardResolveAggs(specs); err != nil {
			return nil, err
		}
	}
	names := append([]string(nil), q.cols...)
	if len(names) == 0 {
		names = append(names, t.order...)
	}
	for _, name := range names {
		if _, ok := sh.kids[0].cols[name]; !ok {
			return nil, fmt.Errorf("table %s: no column %q", t.name, name)
		}
	}
	se, err := q.shardBind()
	if err != nil {
		return nil, err
	}
	var st core.QueryStats
	nunits := len(se.units)
	par := resolveParallelism(q.opts, nunits)
	segPlans := make([]*PlanNode, nunits)
	infos := make([]planSegInfo, nunits)
	aggSegs := make([]AggSegmentPlan, nunits)
	var fast, vect uint64
	pruned := 0
	ferr := se.forEachUnit(q,
		func(i int) segOut {
			u := se.units[i]
			kid := sh.kids[u.c]
			var o segOut
			ev := kid.evalSegment(se.ens[u.c], u.lseg, q.opts, &o.st, true)
			o.plan = ev.plan
			o.fast = kid.fastCountSegment(u.lseg, ev.runs)
			if !q.opts.Scalar {
				o.vect = kid.vectorizedBlocksSegment(u.lseg, ev.runs)
			}
			if kbinds != nil && !q.limited {
				ap := kid.aggSegmentPlan(u.lseg, ev, kbinds[u.c])
				ap.Segment = u.gseg
				aggSegs[i] = ap
			}
			releaseEval(&ev)
			return o
		},
		func(i int, o segOut) bool {
			u := se.units[i]
			st.Add(o.st)
			segPlans[i] = o.plan
			infos[i] = planSegInfo{seg: u.gseg, rows: sh.kids[u.c].segLen(u.lseg)}
			fast += o.fast
			vect += o.vect
			if o.plan.CandidateBlocks == 0 {
				pruned++
			}
			return true
		})
	if ferr != nil {
		return nil, t.abortErr(ferr)
	}
	lim := -1
	if q.limited {
		lim = q.limit
	}
	sealed := 0
	for _, kid := range sh.kids {
		sealed += kid.rows
	}
	deltaRows := 0
	for c, view := range se.views {
		if view == nil {
			continue
		}
		deltaRows += len(view.rows)
		view.scan(view.matcher(se.ens[c]), &st, func(int, []any) bool { return true })
	}
	p := &Plan{
		Table:            t.name,
		Columns:          names,
		Limit:            lim,
		TotalRows:        sealed + deltaRows,
		TotalBlocks:      (sealed + BlockRows - 1) / BlockRows,
		DeltaRows:        deltaRows,
		SegmentRows:      t.segRows,
		Segments:         nunits,
		Parallelism:      par,
		SegmentsPruned:   pruned,
		Root:             aggregatePlans(segPlans, infos),
		Stats:            st,
		FastCountRows:    fast,
		BlocksVectorized: vect,
	}
	if q.order != nil {
		p.OrderBy = q.order.String()
	}
	if kbinds != nil {
		for _, b := range kbinds[0] {
			p.Aggregates = append(p.Aggregates, b.spec.String())
		}
		if !q.limited {
			p.AggSegments = aggSegs
		}
	}
	return p, nil
}
