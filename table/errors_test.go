package table

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// TestShardDenseError checks that AddColumn on a sharded table with a
// holey id space fails with a typed, inspectable error: errors.As
// exposes which shard broke the dense layout and by how much, while a
// dense table keeps accepting columns.
func TestShardDenseError(t *testing.T) {
	tb := seedSharded(t, 2, 64, 64) // fills shard 0's first segment: dense

	// Control: the packed layout accepts a new column.
	if err := AddColumn(tb, "price", make([]int64, 64), Imprints, core.Options{Seed: 3}); err != nil {
		t.Fatalf("dense AddColumn: %v", err)
	}

	// Punch a hole: commit rows straight into shard 0, skipping the
	// parent's segment-interleaved routing. Global ids now have gaps
	// no flat value slice can address.
	kid := tb.shard.kids[0]
	b := kid.NewBatch()
	if err := Append(b, "qty", []int64{100, 101}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendStrings("city", []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if err := Append(b, "price", []int64{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}

	total := 0
	for _, k := range tb.shard.kids {
		total += k.Rows()
	}
	err := AddColumn(tb, "tax", make([]int64, total), Imprints, core.Options{Seed: 3})
	if err == nil {
		t.Fatal("AddColumn on a non-dense sharded table succeeded")
	}
	var dense *ShardDenseError
	if !errors.As(err, &dense) {
		t.Fatalf("error is %T (%v), want *ShardDenseError", err, err)
	}
	if dense.Table != "orders" || dense.Column != "tax" {
		t.Fatalf("error names table %q column %q, want orders/tax", dense.Table, dense.Column)
	}
	if dense.Shard != 0 || dense.Have != 66 || dense.Want != 64 {
		t.Fatalf("error blames shard %d (have %d, want %d); expected shard 0 holding 66 vs dense 64",
			dense.Shard, dense.Have, dense.Want)
	}
	if dense.Error() == "" || !errors.As(error(dense), new(*ShardDenseError)) {
		t.Fatal("ShardDenseError does not round-trip through the error interface")
	}
}
