package table

import (
	"fmt"
	"math"
	"math/rand/v2"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
)

// Randomized sharded query oracle: the same operation log runs against
// an unsharded table and sharded tables (2 and 4 shards), and every
// probe — ids, counts, rows, aggregates, groups, top-k, limited
// aggregates — must match a serial model that replicates the global-id
// mapping (including chunked commit routing and shard-local compaction)
// with plain loops. Each probe also runs at parallelism 1, 2 and 8 and
// the three results must be deeply identical, pinning the deterministic
// (shard, segment) merge.

// soRow is one live row of the model.
type soRow struct {
	a int64
	s string
}

// soMirror is the serial model of one table variant. It tracks rows by
// global id using the same gid arithmetic as shardState, so it predicts
// exact ids even after shard-local compaction leaves holes.
type soMirror struct {
	sh   *shardState // gid math only (nshards, segRows)
	cnt  []int       // per-shard local row counts, deleted slots included
	rows map[int]soRow
	dead map[int]bool
}

func newSoMirror(shards, segRows int) *soMirror {
	return &soMirror{
		sh:   &shardState{nshards: shards, segRows: segRows},
		cnt:  make([]int, shards),
		rows: map[int]soRow{},
		dead: map[int]bool{},
	}
}

// append replicates commitSharded's serial routing: segment-bounded
// chunks land on the shard whose next free global id is lowest.
func (m *soMirror) append(vals []int64, strs []string) {
	for from := 0; from < len(vals); {
		c := 0
		for k := 1; k < m.sh.nshards; k++ {
			if m.sh.gidOf(k, m.cnt[k]) < m.sh.gidOf(c, m.cnt[c]) {
				c = k
			}
		}
		n := min(len(vals)-from, m.sh.segRows-m.cnt[c]%m.sh.segRows)
		for i := 0; i < n; i++ {
			m.rows[m.sh.gidOf(c, m.cnt[c]+i)] = soRow{a: vals[from+i], s: strs[from+i]}
		}
		m.cnt[c] += n
		from += n
	}
}

func (m *soMirror) liveIDs() []int {
	ids := make([]int, 0, len(m.rows))
	for id := range m.rows {
		if !m.dead[id] {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// compact replicates shard-local compaction: each shard's live rows
// re-pack into local ids 0..n-1 preserving local order.
func (m *soMirror) compact() {
	type slot struct {
		lid int
		row soRow
	}
	perShard := make([][]slot, m.sh.nshards)
	for id, row := range m.rows {
		if m.dead[id] {
			continue
		}
		c, lid := m.sh.decode(id)
		perShard[c] = append(perShard[c], slot{lid: lid, row: row})
	}
	m.rows = map[int]soRow{}
	m.dead = map[int]bool{}
	for c, slots := range perShard {
		sort.Slice(slots, func(i, j int) bool { return slots[i].lid < slots[j].lid })
		for lid, s := range slots {
			m.rows[m.sh.gidOf(c, lid)] = s.row
		}
		m.cnt[c] = len(slots)
	}
}

// soProbe is one full query sweep's results, comparable across
// parallelism levels and against the model.
type soProbe struct {
	allIDs []uint32
	predID []uint32
	count  uint64
	lcount uint64
	rowsA  map[int]int64
	rowsS  map[int]string
	sum    AggValue
	mn     AggValue
	mx     AggValue
	avg    AggValue
	cnt    AggValue
	lsum   AggValue
	lrows  uint64
	groups []Group
	topk   []uint32
}

// soSweep executes every probe shape once at the given parallelism.
func soSweep(t *testing.T, tb *Table, lo, hi int64, par int) soProbe {
	t.Helper()
	opts := SelectOptions{Parallelism: par}
	var p soProbe
	var err error
	if p.allIDs, _, err = tb.Select().Options(opts).IDs(); err != nil {
		t.Fatal(err)
	}
	pred := Range[int64]("a", lo, hi)
	if p.predID, _, err = tb.Select().Options(opts).Where(pred).IDs(); err != nil {
		t.Fatal(err)
	}
	if p.count, _, err = tb.Select().Options(opts).Where(pred).Count(); err != nil {
		t.Fatal(err)
	}
	if p.lcount, _, err = tb.Select().Options(opts).Where(pred).Limit(7).Count(); err != nil {
		t.Fatal(err)
	}
	p.rowsA, p.rowsS = map[int]int64{}, map[int]string{}
	q := tb.Select("a", "s").Options(opts).Where(pred)
	for id, row := range q.Rows() {
		p.rowsA[id] = row.Get("a").(int64)
		p.rowsS[id] = row.Get("s").(string)
	}
	if err := q.Err(); err != nil {
		t.Fatal(err)
	}
	res, _, err := tb.Select().Options(opts).Where(pred).
		Aggregate(Sum("a"), Min("a"), Max("a"), Avg("a"), CountAll())
	if err != nil {
		t.Fatal(err)
	}
	p.sum, p.mn, p.mx, p.avg, p.cnt = res.At(0), res.At(1), res.At(2), res.At(3), res.At(4)
	lres, _, err := tb.Select().Options(opts).Where(pred).Limit(7).Aggregate(Sum("a"))
	if err != nil {
		t.Fatal(err)
	}
	p.lsum, p.lrows = lres.At(0), lres.Rows
	gres, _, err := tb.Select().Options(opts).Where(pred).GroupBy("s").
		Aggregate(CountAll(), Sum("a"))
	if err != nil {
		t.Fatal(err)
	}
	p.groups = gres.Groups
	if p.topk, _, err = tb.Select().Options(opts).Where(pred).
		OrderBy(Desc("a")).Limit(10).IDs(); err != nil {
		t.Fatal(err)
	}
	return p
}

// soCheck verifies one probe against the model.
func soCheck(t *testing.T, tag string, p soProbe, m *soMirror, lo, hi int64) {
	t.Helper()
	live := m.liveIDs()
	if len(p.allIDs) != len(live) {
		t.Fatalf("%s: %d ids, model has %d", tag, len(p.allIDs), len(live))
	}
	for i, id := range p.allIDs {
		if int(id) != live[i] {
			t.Fatalf("%s: ids[%d] = %d, model %d", tag, i, id, live[i])
		}
	}
	type ent struct {
		id int
		r  soRow
	}
	var match []ent
	var sum int64
	mn, mx := int64(math.MaxInt64), int64(math.MinInt64)
	groups := map[string]*struct {
		rows uint64
		sum  int64
	}{}
	for _, id := range live {
		r := m.rows[id]
		if r.a < lo || r.a > hi {
			continue
		}
		match = append(match, ent{id: id, r: r})
		sum += r.a
		mn, mx = min(mn, r.a), max(mx, r.a)
		g := groups[r.s]
		if g == nil {
			g = &struct {
				rows uint64
				sum  int64
			}{}
			groups[r.s] = g
		}
		g.rows++
		g.sum += r.a
	}
	if len(p.predID) != len(match) || p.count != uint64(len(match)) {
		t.Fatalf("%s: predicate hit %d ids / count %d, model %d", tag, len(p.predID), p.count, len(match))
	}
	for i, id := range p.predID {
		if int(id) != match[i].id {
			t.Fatalf("%s: pred ids[%d] = %d, model %d", tag, i, id, match[i].id)
		}
	}
	if want := uint64(min(7, len(match))); p.lcount != want {
		t.Fatalf("%s: limited count = %d, want %d", tag, p.lcount, want)
	}
	if len(p.rowsA) != len(match) {
		t.Fatalf("%s: Rows yielded %d, model %d", tag, len(p.rowsA), len(match))
	}
	for _, e := range match {
		if p.rowsA[e.id] != e.r.a || p.rowsS[e.id] != e.r.s {
			t.Fatalf("%s: row %d = (%d,%q), model (%d,%q)",
				tag, e.id, p.rowsA[e.id], p.rowsS[e.id], e.r.a, e.r.s)
		}
	}
	if p.cnt.Int != int64(len(match)) {
		t.Fatalf("%s: CountAll = %d, model %d", tag, p.cnt.Int, len(match))
	}
	if len(match) == 0 {
		if p.sum.Valid || p.mn.Valid || p.mx.Valid {
			t.Fatalf("%s: empty selection produced valid aggregates", tag)
		}
	} else {
		if p.sum.Int != sum || p.mn.Int != mn || p.mx.Int != mx {
			t.Fatalf("%s: sum/min/max = %d/%d/%d, model %d/%d/%d",
				tag, p.sum.Int, p.mn.Int, p.mx.Int, sum, mn, mx)
		}
		if want := float64(sum) / float64(len(match)); math.Abs(p.avg.Float-want) > 1e-9 {
			t.Fatalf("%s: avg = %v, model %v", tag, p.avg.Float, want)
		}
	}
	var lsum int64
	ltake := min(7, len(match))
	for _, e := range match[:ltake] {
		lsum += e.r.a
	}
	if p.lrows != uint64(ltake) || (ltake > 0 && p.lsum.Int != lsum) {
		t.Fatalf("%s: limited agg rows/sum = %d/%d, model %d/%d", tag, p.lrows, p.lsum.Int, ltake, lsum)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(p.groups) != len(keys) {
		t.Fatalf("%s: %d groups, model %d", tag, len(p.groups), len(keys))
	}
	for i, k := range keys {
		g := p.groups[i]
		if g.Key.(string) != k || g.Rows != groups[k].rows || g.Aggs[1].Int != groups[k].sum {
			t.Fatalf("%s: group %v (%d rows, sum %d), model %q (%d, %d)",
				tag, g.Key, g.Rows, g.Aggs[1].Int, k, groups[k].rows, groups[k].sum)
		}
	}
	topk := append([]ent(nil), match...)
	sort.Slice(topk, func(i, j int) bool {
		if topk[i].r.a != topk[j].r.a {
			return topk[i].r.a > topk[j].r.a
		}
		return topk[i].id < topk[j].id
	})
	ktake := min(10, len(topk))
	if len(p.topk) != ktake {
		t.Fatalf("%s: topk returned %d ids, model %d", tag, len(p.topk), ktake)
	}
	for i := 0; i < ktake; i++ {
		if int(p.topk[i]) != topk[i].id {
			t.Fatalf("%s: topk[%d] = %d, model %d", tag, i, p.topk[i], topk[i].id)
		}
	}
}

func mkShardOracleTable(t *testing.T, shards int, vals []int64, strs []string, ingest bool) *Table {
	t.Helper()
	tb := NewWithOptions("oracle", TableOptions{SegmentRows: 128, Shards: shards})
	if err := AddColumn(tb, "a", vals, Imprints, core.Options{Seed: 21}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("s", strs, Imprints, core.Options{Seed: 22}); err != nil {
		t.Fatal(err)
	}
	if ingest {
		if err := tb.EnableDeltaIngest(IngestOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// soOp is one generated operation; point ops carry a rank into the
// variant's live-id list rather than a raw id, because shard-local
// compaction gives each variant its own id space.
type soOp struct {
	kind byte // 'a' append, 'u' update, 's' string update, 'd' delete, 'c' compact, 'f' flush, 'z' seal
	rank int
	val  int64
	str  string
	rows []int64
	strs []string
}

func (op soOp) applyTable(tb *Table, m *soMirror) error {
	switch op.kind {
	case 'a':
		b := tb.NewBatch()
		if err := Append(b, "a", op.rows); err != nil {
			return err
		}
		if err := b.AppendStrings("s", op.strs); err != nil {
			return err
		}
		return b.Commit()
	case 'u':
		if live := m.liveIDs(); len(live) > 0 {
			return Update(tb, "a", live[op.rank%len(live)], op.val)
		}
	case 's':
		if live := m.liveIDs(); len(live) > 0 {
			return tb.UpdateString("s", live[op.rank%len(live)], op.str)
		}
	case 'd':
		if live := m.liveIDs(); len(live) > 0 {
			return tb.Delete(live[op.rank%len(live)])
		}
	case 'c':
		tb.Compact()
	case 'f':
		tb.FlushDelta()
	case 'z':
		tb.SealDelta()
	}
	return nil
}

func (op soOp) applyMirror(m *soMirror) {
	switch op.kind {
	case 'a':
		m.append(op.rows, op.strs)
	case 'u':
		if live := m.liveIDs(); len(live) > 0 {
			id := live[op.rank%len(live)]
			m.rows[id] = soRow{a: op.val, s: m.rows[id].s}
		}
	case 's':
		if live := m.liveIDs(); len(live) > 0 {
			id := live[op.rank%len(live)]
			m.rows[id] = soRow{a: m.rows[id].a, s: op.str}
		}
	case 'd':
		if live := m.liveIDs(); len(live) > 0 {
			m.dead[live[op.rank%len(live)]] = true
		}
	case 'c':
		m.compact()
	}
}

func soGen(rng *rand.Rand, ingest bool) soOp {
	r := rng.IntN(100)
	switch {
	case r < 45:
		n := 16 + rng.IntN(150)
		rows := make([]int64, n)
		strs := make([]string, n)
		for i := range rows {
			rows[i] = rng.Int64N(1_000_000)
			strs[i] = oraCities[rng.IntN(len(oraCities))]
		}
		return soOp{kind: 'a', rows: rows, strs: strs}
	case r < 65:
		return soOp{kind: 'u', rank: rng.IntN(1 << 20), val: rng.Int64N(1_000_000)}
	case r < 75:
		return soOp{kind: 's', rank: rng.IntN(1 << 20), str: oraCities[rng.IntN(len(oraCities))]}
	case r < 90:
		return soOp{kind: 'd', rank: rng.IntN(1 << 20)}
	case r < 95 && ingest:
		return soOp{kind: 'f'}
	case ingest:
		return soOp{kind: 'z'}
	default:
		return soOp{kind: 'c'}
	}
}

func runShardOracle(t *testing.T, ingest bool) {
	ops := 160
	if raceEnabled {
		ops = 60
	}
	const n0 = 512
	rng := rand.New(rand.NewPCG(0x5a4d, 0xca7))
	vals := make([]int64, n0)
	strs := make([]string, n0)
	for i := range vals {
		vals[i] = rng.Int64N(1_000_000)
		strs[i] = oraCities[rng.IntN(len(oraCities))]
	}
	shardCounts := []int{1, 2, 4}
	tbs := make([]*Table, len(shardCounts))
	ms := make([]*soMirror, len(shardCounts))
	for i, sc := range shardCounts {
		tbs[i] = mkShardOracleTable(t, sc, vals, strs, ingest)
		ms[i] = newSoMirror(max(sc, 1), 128)
		ms[i].append(vals, strs)
	}
	defer func() {
		if ingest {
			for _, tb := range tbs {
				tb.Close()
			}
		}
	}()
	compacted := false
	for k := 0; k <= ops; k++ {
		if k < ops {
			op := soGen(rng, ingest)
			if op.kind == 'c' {
				compacted = true
			}
			for i := range tbs {
				if err := op.applyTable(tbs[i], ms[i]); err != nil {
					t.Fatalf("op %d (%c) on shards=%d: %v", k, op.kind, shardCounts[i], err)
				}
				op.applyMirror(ms[i])
			}
		}
		if k%10 != 0 && k < ops {
			continue
		}
		lo := rng.Int64N(900_000)
		hi := lo + 50_000 + rng.Int64N(400_000)
		probes := make([]soProbe, len(shardCounts))
		for i, sc := range shardCounts {
			base := soSweep(t, tbs[i], lo, hi, 1)
			soCheck(t, fmt.Sprintf("op %d shards=%d", k, sc), base, ms[i], lo, hi)
			// The merge is deterministic: parallelism must not change a
			// single byte of any result, floats included.
			for _, par := range []int{2, 8} {
				got := soSweep(t, tbs[i], lo, hi, par)
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("op %d shards=%d: parallelism %d diverges from serial", k, sc, par)
				}
			}
			probes[i] = base
		}
		// Serial commits keep the id space dense, so until the first
		// shard-local compaction every variant — unsharded included —
		// returns byte-identical results at every shard count.
		if !compacted {
			for i := 1; i < len(shardCounts); i++ {
				if !reflect.DeepEqual(probes[0], probes[i]) {
					t.Fatalf("op %d: shards=%d diverges from unsharded on the dense prefix",
						k, shardCounts[i])
				}
			}
		}
	}
}

func TestShardQueryOracle(t *testing.T)       { runShardOracle(t, false) }
func TestShardQueryOracleIngest(t *testing.T) { runShardOracle(t, true) }

// TestShardConcurrentWritersReaders drives parallel writers against a
// sharded auto-sealing table while readers aggregate, then checks the
// final state against the writers' tallies. Its value is mostly under
// -race: commits, seals and shard-fanned reads must be data-race free.
func TestShardConcurrentWritersReaders(t *testing.T) {
	const writers = 4
	batches := 40
	if raceEnabled {
		batches = 12
	}
	tb := mkShardOracleTable(t, 4, nil, nil, false)
	if err := tb.EnableDeltaIngest(IngestOptions{AutoSeal: true}); err != nil {
		t.Fatal(err)
	}
	var wWg, rWg sync.WaitGroup
	sums := make([]int64, writers)
	rows := make([]int64, writers)
	for w := 0; w < writers; w++ {
		wWg.Add(1)
		go func(w int) {
			defer wWg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 99))
			for i := 0; i < batches; i++ {
				n := 32 + rng.IntN(96)
				vals := make([]int64, n)
				strs := make([]string, n)
				for j := range vals {
					vals[j] = rng.Int64N(10_000)
					sums[w] += vals[j]
					strs[j] = oraCities[rng.IntN(len(oraCities))]
				}
				rows[w] += int64(n)
				b := tb.NewBatch()
				if err := Append(b, "a", vals); err != nil {
					t.Error(err)
					return
				}
				if err := b.AppendStrings("s", strs); err != nil {
					t.Error(err)
					return
				}
				if err := b.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var rdErr sync.Once
	for r := 0; r < 3; r++ {
		rWg.Add(1)
		go func() {
			defer rWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := tb.Select().Options(SelectOptions{Parallelism: 4}).
					Aggregate(CountAll(), Sum("a")); err != nil {
					rdErr.Do(func() { t.Error(err) })
					return
				}
			}
		}()
	}
	wWg.Wait()
	close(stop)
	rWg.Wait()
	if err := tb.Close(); err != nil {
		t.Fatal(err)
	}
	var wantRows, wantSum int64
	for w := 0; w < writers; w++ {
		wantRows += rows[w]
		wantSum += sums[w]
	}
	if got := int64(tb.Rows()); got != wantRows {
		t.Fatalf("Rows = %d, writers committed %d", got, wantRows)
	}
	res, _, err := tb.Select().Aggregate(CountAll(), Sum("a"))
	if err != nil {
		t.Fatal(err)
	}
	if res.At(0).Int != wantRows || res.At(1).Int != wantSum {
		t.Fatalf("count/sum = %d/%d, writers tallied %d/%d",
			res.At(0).Int, res.At(1).Int, wantRows, wantSum)
	}
}
