package table

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
)

func TestInPredicate(t *testing.T) {
	tb, _, _, status := mkTable(t, 4000, 30)
	got, _, err := tb.Select().Where(In[uint8]("status", 1, 3)).IDs()
	if err != nil {
		t.Fatal(err)
	}
	var want []uint32
	for i, v := range status {
		if v == 1 || v == 3 {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "IN on unindexed")

	// IN over an indexed column.
	qty, _ := Column[int64](tb, "qty")
	members := []int64{qty[0], qty[100], qty[2000]}
	got, _, err = tb.Select().Where(In("qty", members...)).IDs()
	if err != nil {
		t.Fatal(err)
	}
	in := map[int64]bool{}
	for _, m := range members {
		in[m] = true
	}
	want = nil
	for i, v := range qty {
		if in[v] {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "IN on imprinted")

	// Type mismatch is an error.
	if _, _, err := tb.Select().Where(In[int32]("qty", 5)).IDs(); err == nil {
		t.Error("IN with wrong element type accepted")
	}
}

func TestZonemapMode(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 31))
	n := 5000
	// Near-sorted data: the zonemap's sweet spot.
	ts := make([]int64, n)
	v := int64(0)
	for i := 0; i < n; i++ {
		v += int64(rng.IntN(10))
		ts[i] = v
	}
	other := make([]float64, n)
	for i := range other {
		other[i] = rng.Float64() * 100
	}
	tb := New("events")
	if err := AddColumn(tb, "ts", ts, Zonemap, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := AddColumn(tb, "score", other, Imprints, core.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if tb.IndexBytes() <= 0 {
		t.Error("zonemap mode reports no index bytes")
	}

	// Every leaf kind over the zonemap column.
	lo, hi := ts[n/4], ts[n/2]
	got, st, err := tb.Select().Where(Range[int64]("ts", lo, hi)).IDs()
	if err != nil {
		t.Fatal(err)
	}
	var want []uint32
	for i, x := range ts {
		if x >= lo && x < hi {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "zonemap range")
	if st.Probes == 0 {
		t.Error("zonemap leaf did not probe")
	}

	got, _, err = tb.Select().Where(AtLeast[int64]("ts", hi)).IDs()
	if err != nil {
		t.Fatal(err)
	}
	want = nil
	for i, x := range ts {
		if x >= hi {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "zonemap at-least")

	got, _, err = tb.Select().Where(LessThan[int64]("ts", lo)).IDs()
	if err != nil {
		t.Fatal(err)
	}
	want = nil
	for i, x := range ts {
		if x < lo {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "zonemap less-than")

	got, _, err = tb.Select().Where(Equals[int64]("ts", ts[777])).IDs()
	if err != nil {
		t.Fatal(err)
	}
	want = nil
	for i, x := range ts {
		if x == ts[777] {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "zonemap equals")

	got, _, err = tb.Select().Where(In("ts", ts[5], ts[n-5])).IDs()
	if err != nil {
		t.Fatal(err)
	}
	in := map[int64]bool{ts[5]: true, ts[n-5]: true}
	want = nil
	for i, x := range ts {
		if in[x] {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "zonemap in")

	// Mixed zonemap + imprints conjunction.
	got, _, err = tb.Select().Where(And(
		Range[int64]("ts", lo, hi),
		LessThan[float64]("score", 25.0),
	)).IDs()
	if err != nil {
		t.Fatal(err)
	}
	want = nil
	for i := range ts {
		if ts[i] >= lo && ts[i] < hi && other[i] < 25 {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "mixed zonemap+imprints AND")
}

func TestZonemapModeUpdatesAndAppends(t *testing.T) {
	rng := rand.New(rand.NewPCG(32, 32))
	ts := make([]int64, 2000)
	for i := range ts {
		ts[i] = int64(i * 3)
	}
	tb := New("e")
	if err := AddColumn(tb, "ts", ts, Zonemap, core.Options{}); err != nil {
		t.Fatal(err)
	}
	// In-place updates widen zones; queries stay sound.
	for u := 0; u < 150; u++ {
		id := rng.IntN(len(ts))
		nv := int64(rng.IntN(6000))
		if err := Update(tb, "ts", id, nv); err != nil {
			t.Fatal(err)
		}
	}
	// Column materializes a snapshot; re-fetch after the updates.
	live, _ := Column[int64](tb, "ts")
	lo, hi := int64(1000), int64(2000)
	got, _, err := tb.Select().Where(Range[int64]("ts", lo, hi)).IDs()
	if err != nil {
		t.Fatal(err)
	}
	var want []uint32
	for i, x := range live {
		if x >= lo && x < hi {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "zonemap after updates")

	// Batch append extends the zonemap.
	b := tb.NewBatch()
	if err := Append(b, "ts", []int64{9000, 9001, 9002}); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	got, _, err = tb.Select().Where(AtLeast[int64]("ts", 9000)).IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("appended rows not found: %v", got)
	}
}

func TestZonemapModePersistence(t *testing.T) {
	ts := make([]int64, 1000)
	for i := range ts {
		ts[i] = int64(i)
	}
	tb := New("z")
	if err := AddColumn(tb, "ts", ts, Zonemap, core.Options{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ids, st, err := got.Select().Where(Range[int64]("ts", 100, 200)).IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 100 {
		t.Errorf("persisted zonemap query: %d ids", len(ids))
	}
	if st.Probes == 0 {
		t.Error("rebuilt zonemap did not probe")
	}
}

func TestReadRow(t *testing.T) {
	tb, qty, price, status := mkTable(t, 100, 33)
	row, err := tb.ReadRow(42)
	if err != nil {
		t.Fatal(err)
	}
	if row["qty"] != qty[42] || row["price"] != price[42] || row["status"] != status[42] {
		t.Errorf("ReadRow(42) = %v", row)
	}
	if _, err := tb.ReadRow(100); err == nil {
		t.Error("out-of-range row read accepted")
	}
	if err := tb.Delete(10); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ReadRow(10); err == nil {
		t.Error("deleted row read accepted")
	}
}
