package table

import (
	"math/rand/v2"
	"testing"

	"repro/internal/core"
)

// mkTable builds a three-column test relation: int64 walk, float64
// uniform, uint8 categorical (mixed value widths on purpose: 8, 8, 64
// rows per cacheline respectively).
func mkTable(t *testing.T, n int, seed uint64) (*Table, []int64, []float64, []uint8) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0x7ab1e))
	qty := make([]int64, n)
	price := make([]float64, n)
	status := make([]uint8, n)
	v := int64(1000)
	for i := 0; i < n; i++ {
		v += int64(rng.IntN(21)) - 10
		qty[i] = v
		price[i] = rng.Float64() * 100
		status[i] = uint8(rng.IntN(5))
	}
	tb := New("orders")
	if err := AddColumn(tb, "qty", qty, Imprints, core.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := AddColumn(tb, "price", price, Imprints, core.Options{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := AddColumn(tb, "status", status, NoIndex, core.Options{}); err != nil {
		t.Fatal(err)
	}
	return tb, qty, price, status
}

func equalIDs(t *testing.T, got, want []uint32, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d ids, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: id[%d] = %d, want %d", ctx, i, got[i], want[i])
		}
	}
}

func TestTableBasics(t *testing.T) {
	tb, _, _, _ := mkTable(t, 1000, 1)
	if tb.Name() != "orders" || tb.Rows() != 1000 || tb.LiveRows() != 1000 {
		t.Errorf("table meta wrong: %s %d", tb.Name(), tb.Rows())
	}
	cols := tb.Columns()
	if len(cols) != 3 || cols[0] != "qty" || cols[2] != "status" {
		t.Errorf("Columns = %v", cols)
	}
	if tb.SizeBytes() != 1000*(8+8+1) {
		t.Errorf("SizeBytes = %d", tb.SizeBytes())
	}
	if tb.IndexBytes() <= 0 {
		t.Error("IndexBytes missing")
	}
	vals, err := Column[int64](tb, "qty")
	if err != nil || len(vals) != 1000 {
		t.Fatalf("Column: %v", err)
	}
	ix, err := Index[int64](tb, "qty")
	if err != nil || ix == nil {
		t.Fatalf("Index: %v", err)
	}
	if ix2, err := Index[uint8](tb, "status"); err != nil || ix2 != nil {
		t.Errorf("unindexed column returned index (%v)", err)
	}
}

func TestAddColumnErrors(t *testing.T) {
	tb := New("t")
	if err := AddColumn(tb, "a", []int64{1, 2, 3}, Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := AddColumn(tb, "a", []int64{1, 2, 3}, Imprints, core.Options{}); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := AddColumn(tb, "b", []int64{1}, Imprints, core.Options{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Column[float64](tb, "a"); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, err := Column[int64](tb, "zzz"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestSelectSingleLeaf(t *testing.T) {
	tb, qty, _, _ := mkTable(t, 5000, 2)
	got, st, err := tb.Select().Where(Range[int64]("qty", 900, 1100)).IDs()
	if err != nil {
		t.Fatal(err)
	}
	var want []uint32
	for i, v := range qty {
		if v >= 900 && v < 1100 {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "single leaf")
	if st.Probes == 0 {
		t.Error("no probes recorded despite index")
	}
}

func TestSelectLeafKinds(t *testing.T) {
	tb, qty, _, status := mkTable(t, 3000, 3)
	got, _, err := tb.Select().Where(AtLeast[int64]("qty", 1000)).IDs()
	if err != nil {
		t.Fatal(err)
	}
	var want []uint32
	for i, v := range qty {
		if v >= 1000 {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "at-least")

	got, _, err = tb.Select().Where(LessThan[int64]("qty", 950)).IDs()
	if err != nil {
		t.Fatal(err)
	}
	want = nil
	for i, v := range qty {
		if v < 950 {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "less-than")

	got, _, err = tb.Select().Where(Equals[uint8]("status", 3)).IDs()
	if err != nil {
		t.Fatal(err)
	}
	want = nil
	for i, v := range status {
		if v == 3 {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "equals on unindexed")
}

func TestSelectMixedWidthConjunction(t *testing.T) {
	// qty is int64 (8 rows/cacheline), status is uint8 (64 rows per
	// cacheline, unindexed): the block normalization must line them up.
	tb, qty, price, status := mkTable(t, 7003, 4)
	pred := And(
		Range[int64]("qty", 950, 1050),
		Range[float64]("price", 20.0, 80.0),
		Equals[uint8]("status", 1),
	)
	got, _, err := tb.Select().Where(pred).IDs()
	if err != nil {
		t.Fatal(err)
	}
	var want []uint32
	for i := range qty {
		if qty[i] >= 950 && qty[i] < 1050 && price[i] >= 20 && price[i] < 80 && status[i] == 1 {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "mixed-width AND")
}

func TestSelectOrAndNotTrees(t *testing.T) {
	tb, qty, price, status := mkTable(t, 5000, 5)
	pred := Or(
		And(Range[int64]("qty", 900, 950), LessThan[float64]("price", 50.0)),
		AndNot(Equals[uint8]("status", 2), Range[int64]("qty", 1000, 1100)),
	)
	got, _, err := tb.Select().Where(pred).IDs()
	if err != nil {
		t.Fatal(err)
	}
	var want []uint32
	for i := range qty {
		a := qty[i] >= 900 && qty[i] < 950 && price[i] < 50
		b := status[i] == 2 && !(qty[i] >= 1000 && qty[i] < 1100)
		if a || b {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "OR/ANDNOT tree")
}

func TestSelectErrors(t *testing.T) {
	tb, _, _, _ := mkTable(t, 100, 6)
	if _, _, err := tb.Select().Where(Range[int64]("nope", 0, 1)).IDs(); err == nil {
		t.Error("unknown column accepted")
	}
	if _, _, err := tb.Select().Where(Range[int32]("qty", 0, 1)).IDs(); err == nil {
		t.Error("wrong bound type accepted")
	}
	if _, _, err := tb.Select().Where(And()).IDs(); err == nil {
		t.Error("empty AND accepted")
	}
	if _, _, err := tb.Select().Where(Or()).IDs(); err == nil {
		t.Error("empty OR accepted")
	}
}

func TestCountMatchesSelect(t *testing.T) {
	tb, _, _, _ := mkTable(t, 4000, 7)
	pred := And(Range[int64]("qty", 950, 1100), Range[float64]("price", 10.0, 60.0))
	ids, _, err := tb.Select().Where(pred).IDs()
	if err != nil {
		t.Fatal(err)
	}
	n, _, err := tb.Select().Where(pred).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(ids)) {
		t.Errorf("Count = %d, Select = %d", n, len(ids))
	}
}

func TestBatchAppend(t *testing.T) {
	tb, qty, price, status := mkTable(t, 1000, 8)
	rng := rand.New(rand.NewPCG(9, 9))
	newQty := make([]int64, 500)
	newPrice := make([]float64, 500)
	newStatus := make([]uint8, 500)
	for i := range newQty {
		newQty[i] = int64(900 + rng.IntN(300))
		newPrice[i] = rng.Float64() * 100
		newStatus[i] = uint8(rng.IntN(5))
	}
	b := tb.NewBatch()
	if err := Append(b, "qty", newQty); err != nil {
		t.Fatal(err)
	}
	if err := Append(b, "price", newPrice); err != nil {
		t.Fatal(err)
	}
	if err := Append(b, "status", newStatus); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 1500 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	all := append(append([]int64(nil), qty...), newQty...)
	allP := append(append([]float64(nil), price...), newPrice...)
	allS := append(append([]uint8(nil), status...), newStatus...)
	got, _, err := tb.Select().Where(And(
		Range[int64]("qty", 950, 1050),
		LessThan[float64]("price", 50.0),
		Equals[uint8]("status", 2),
	)).IDs()
	if err != nil {
		t.Fatal(err)
	}
	var want []uint32
	for i := range all {
		if all[i] >= 950 && all[i] < 1050 && allP[i] < 50 && allS[i] == 2 {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "after batch append")
}

func TestBatchValidation(t *testing.T) {
	tb, _, _, _ := mkTable(t, 100, 10)
	b := tb.NewBatch()
	if err := Append(b, "qty", []int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	// Mismatched count within the batch.
	if err := Append(b, "price", []float64{1}); err == nil {
		t.Error("mismatched batch column accepted")
	}
	// Missing column on commit.
	b2 := tb.NewBatch()
	if err := Append(b2, "qty", []int64{5}); err != nil {
		t.Fatal(err)
	}
	if err := b2.Commit(); err == nil {
		t.Error("partial batch committed")
	}
	if tb.Rows() != 100 {
		t.Errorf("failed commits changed row count: %d", tb.Rows())
	}
	// Empty batch commit is a no-op.
	if err := tb.NewBatch().Commit(); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

func TestUpdateAndQuery(t *testing.T) {
	tb, qty, _, _ := mkTable(t, 2000, 11)
	rng := rand.New(rand.NewPCG(12, 12))
	for u := 0; u < 200; u++ {
		id := rng.IntN(len(qty))
		nv := int64(800 + rng.IntN(500))
		if err := Update(tb, "qty", id, nv); err != nil {
			t.Fatal(err)
		}
		qty[id] = nv // Column() returns the live slice; mirror it
	}
	got, _, err := tb.Select().Where(Range[int64]("qty", 900, 1000)).IDs()
	if err != nil {
		t.Fatal(err)
	}
	var want []uint32
	for i, v := range qty {
		if v >= 900 && v < 1000 {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "after updates")
	if err := Update(tb, "qty", 99999, int64(5)); err == nil {
		t.Error("out-of-range update accepted")
	}
}

func TestDeleteAndCompact(t *testing.T) {
	tb, qty, _, _ := mkTable(t, 3000, 13)
	rng := rand.New(rand.NewPCG(14, 14))
	deleted := map[int]bool{}
	for d := 0; d < 600; d++ {
		id := rng.IntN(3000)
		if err := tb.Delete(id); err != nil {
			t.Fatal(err)
		}
		deleted[id] = true
	}
	if tb.LiveRows() != 3000-len(deleted) {
		t.Fatalf("LiveRows = %d, want %d", tb.LiveRows(), 3000-len(deleted))
	}
	pred := Range[int64]("qty", 900, 1100)
	got, _, err := tb.Select().Where(pred).IDs()
	if err != nil {
		t.Fatal(err)
	}
	var want []uint32
	for i, v := range qty {
		if !deleted[i] && v >= 900 && v < 1100 {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "after deletes")

	// Compact renumbers ids.
	removed := tb.Compact()
	if removed != len(deleted) {
		t.Fatalf("Compact removed %d, want %d", removed, len(deleted))
	}
	if tb.Rows() != 3000-removed || tb.LiveRows() != tb.Rows() {
		t.Fatalf("rows after compact: %d", tb.Rows())
	}
	got, _, err = tb.Select().Where(pred).IDs()
	if err != nil {
		t.Fatal(err)
	}
	var live []int64
	for i, v := range qty {
		if !deleted[i] {
			live = append(live, v)
		}
	}
	want = nil
	for i, v := range live {
		if v >= 900 && v < 1100 {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, got, want, "after compact")
}

func TestMaintainRebuilds(t *testing.T) {
	tb, qty, _, _ := mkTable(t, 2000, 15)
	rng := rand.New(rand.NewPCG(16, 16))
	// Saturate the qty imprint with scattered updates drawn from the
	// column's own domain (out-of-domain values would all land in one
	// overflow bin and barely saturate anything).
	for u := 0; u < 20000; u++ {
		id := rng.IntN(2000)
		_ = Update(tb, "qty", id, qty[rng.IntN(len(qty))])
	}
	rep := tb.Maintain(MaintainOptions{DeletedFraction: 0.5})
	found := false
	for _, name := range rep.Rebuilt {
		if name == "qty" {
			found = true
		}
	}
	if !found {
		t.Errorf("Maintain did not rebuild qty (rebuilt: %v)", rep.Rebuilt)
	}
	if rep.Compacted || rep.RowsRemoved != 0 {
		t.Errorf("Maintain reported a compaction that did not happen: %+v", rep)
	}
	// Deletion-driven compaction.
	for id := 0; id < 1200; id++ {
		_ = tb.Delete(id)
	}
	rep = tb.Maintain(MaintainOptions{DeletedFraction: 0.5})
	if tb.Rows() != 800 {
		t.Errorf("Maintain did not compact: rows=%d (%v)", tb.Rows(), rep)
	}
	if !rep.Compacted || rep.RowsRemoved != 1200 {
		t.Errorf("Maintain report wrong: %+v", rep)
	}
}

func TestScanThresholdSkipsProbing(t *testing.T) {
	tb, qty, _, _ := mkTable(t, 4000, 17)
	lo, hi := int64(0), int64(1<<40) // ~everything
	// Default threshold: full-range query should skip index probes.
	_, st, err := tb.Select().Where(Range[int64]("qty", lo, hi)).IDs()
	if err != nil {
		t.Fatal(err)
	}
	if st.Probes != 0 {
		t.Errorf("unselective leaf probed the index %d times", st.Probes)
	}
	// Forcing probing still yields correct results.
	got, st2, err := tb.Select().Where(Range[int64]("qty", lo, hi)).Options(SelectOptions{ScanThreshold: 2}).IDs()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Probes == 0 {
		t.Error("forced probing did not probe")
	}
	if len(got) != len(qty) {
		t.Errorf("full range returned %d of %d", len(got), len(qty))
	}
}

// Property-style sweep: random predicate trees against a naive oracle.
func TestRandomPredicateTrees(t *testing.T) {
	tb, qty, price, status := mkTable(t, 3000, 18)
	rng := rand.New(rand.NewPCG(19, 19))
	leaf := func() (Predicate, func(i int) bool) {
		switch rng.IntN(4) {
		case 0:
			lo := int64(850 + rng.IntN(300))
			hi := lo + int64(rng.IntN(200))
			return Range[int64]("qty", lo, hi), func(i int) bool { return qty[i] >= lo && qty[i] < hi }
		case 1:
			x := rng.Float64() * 100
			return LessThan[float64]("price", x), func(i int) bool { return price[i] < x }
		case 2:
			x := rng.Float64() * 100
			return AtLeast[float64]("price", x), func(i int) bool { return price[i] >= x }
		default:
			s := uint8(rng.IntN(5))
			return Equals[uint8]("status", s), func(i int) bool { return status[i] == s }
		}
	}
	for trial := 0; trial < 40; trial++ {
		p1, f1 := leaf()
		p2, f2 := leaf()
		p3, f3 := leaf()
		var pred Predicate
		var oracle func(i int) bool
		switch rng.IntN(3) {
		case 0:
			pred = And(p1, Or(p2, p3))
			oracle = func(i int) bool { return f1(i) && (f2(i) || f3(i)) }
		case 1:
			pred = Or(p1, AndNot(p2, p3))
			oracle = func(i int) bool { return f1(i) || (f2(i) && !f3(i)) }
		default:
			pred = AndNot(And(p1, p2), p3)
			oracle = func(i int) bool { return f1(i) && f2(i) && !f3(i) }
		}
		got, _, err := tb.Select().Where(pred).IDs()
		if err != nil {
			t.Fatal(err)
		}
		var want []uint32
		for i := 0; i < 3000; i++ {
			if oracle(i) {
				want = append(want, uint32(i))
			}
		}
		equalIDs(t, got, want, "random tree")
	}
}
