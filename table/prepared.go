package table

import (
	"fmt"
	"sort"
	"strings"
)

// Prepared is a compile-once predicate plan over one table: Prepare
// validates every leaf's column and type up front and translates each
// placeholder-free leaf exactly once; executions then skip straight to
// per-segment evaluation. Placeholder leaves (Param/StrParam bounds)
// are translated once per execution from the values supplied with Bind.
//
// A Prepared statement is safe for concurrent executions: each Bind or
// Exec call starts an independent *Query carrying its own bindings, and
// the shared compiled tree is immutable. Storage-shape tracking is
// segment-granular: compiled plans resolve the column's segments live
// at execution time, and string-dictionary translations are cached per
// segment keyed by that segment's generation — so batch appends (which
// only extend the active tail or open new segments), segment-local
// index rebuilds and even whole-table compactions never require
// recompiling the statement, and sealed segments keep their cached
// translations across executions. Only the data-dependent access-path
// choice — per-segment estimated selectivity against
// SelectOptions.ScanThreshold, and segment pruning — is re-resolved
// every time.
//
// The serving loop looks like:
//
//	pred := table.And(
//	    table.RangeP("qty", table.Param[int64]("lo"), table.Param[int64]("hi")),
//	    table.EqualsP("city", table.StrParam("city")),
//	)
//	p, err := t.Prepare(pred, table.SelectOptions{})
//	...
//	ids, _, err := p.Bind("lo", int64(40)).Bind("hi", int64(90)).
//	    Bind("city", "Berlin").IDs()
//
// Executions are full Queries, so the aggregation pipeline composes
// with prepared statements too: bind the parameters, then finish with
// Aggregate, GroupBy(...).Aggregate, or OrderBy(...).Limit(k).
type Prepared struct {
	t        *Table
	opts     SelectOptions
	cols     []string
	params   map[string]*paramInfo
	compiled *compiledNode // nil for a match-everything statement
	// static is the execution tree of a placeholder-free statement,
	// bound once at Prepare time and shared by every execution (it is
	// immutable — plans resolve segment state live), so steady-state
	// executions skip the per-execution tree build entirely.
	static *execNode
	// kids holds a sharded table's per-shard statements (nil
	// otherwise); each execution binds every shard's own compilation,
	// so per-segment dictionary caches stay shard-local.
	kids []*Prepared
}

// paramInfo records how one named placeholder is used across the tree,
// so Bind can type-check values before any execution runs.
type paramInfo struct {
	typ  string         // declared value type ("int64", "string", ...)
	list bool           // used in an InP position: binds to a slice
	ok   func(any) bool // dynamic type check for a candidate value
}

func (pi *paramInfo) want() string {
	if pi.list {
		return "[]" + pi.typ
	}
	return pi.typ
}

// Prepare validates a predicate tree against the table and compiles it
// into a reusable plan (see Prepared). A nil predicate prepares a
// match-everything statement. opts fixes the statement's default
// evaluation options; individual executions may override them with
// Query.Options.
func (t *Table) Prepare(pred Predicate, opts SelectOptions) (*Prepared, error) {
	if t.shard != nil {
		p := &Prepared{t: t, opts: opts, kids: make([]*Prepared, t.shard.nshards)}
		for c, kid := range t.shard.kids {
			kp, err := kid.Prepare(pred, opts)
			if err != nil {
				return nil, err
			}
			p.kids[c] = kp
		}
		p.params = p.kids[0].params
		return p, nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	p := &Prepared{t: t, opts: opts}
	if pred != nil {
		params, err := collectParams(pred)
		if err != nil {
			return nil, fmt.Errorf("table %s: %w", t.name, err)
		}
		p.params = params
		cn, err := t.compile(pred)
		if err != nil {
			return nil, err
		}
		p.compiled = cn
		if len(p.params) == 0 {
			if p.static, err = t.bindTree(cn, nil); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

// Select sets the default projection of future executions (no names
// means every column, as with Table.Select). Configure the statement
// before sharing it across goroutines; per-execution changes belong on
// the Query side.
func (p *Prepared) Select(cols ...string) *Prepared {
	p.cols = append([]string(nil), cols...)
	return p
}

// Params lists the statement's placeholder names, sorted.
func (p *Prepared) Params() []string {
	names := make([]string, 0, len(p.params))
	for name := range p.params {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Exec starts one execution of the statement: an independent *Query
// whose Rows/IDs/Count/Explain run the compiled plan. Statements with
// placeholders need every parameter bound (Bind) before executing.
func (p *Prepared) Exec() *Query {
	return &Query{t: p.t, cols: append([]string(nil), p.cols...), prep: p, opts: p.opts}
}

// Bind starts an execution with one parameter bound; chain further Bind
// calls and finish with Rows, IDs, Count or Explain.
func (p *Prepared) Bind(name string, v any) *Query {
	return p.Exec().Bind(name, v)
}

// checkBind validates one candidate binding against the placeholder's
// declared type.
func (p *Prepared) checkBind(name string, v any) error {
	info, ok := p.params[name]
	if !ok {
		return fmt.Errorf("table %s: no parameter $%s in prepared predicate (have %v)", p.t.name, name, p.Params())
	}
	if !info.ok(v) {
		return fmt.Errorf("table %s: parameter $%s wants %s, got %T", p.t.name, name, info.want(), v)
	}
	return nil
}

// checkBinds verifies that every placeholder has a value.
func (p *Prepared) checkBinds(binds map[string]any) error {
	if len(binds) == len(p.params) {
		return nil
	}
	var missing []string
	for name := range p.params {
		if _, ok := binds[name]; !ok {
			missing = append(missing, "$"+name)
		}
	}
	sort.Strings(missing)
	return fmt.Errorf("table %s: unbound parameters: %s", p.t.name, strings.Join(missing, ", "))
}

// bindLocked resolves one execution of the prepared plan down to an
// execution tree (nil for match-everything); the caller holds the
// table's read lock (all executions enter through Query's executors).
func (p *Prepared) bindLocked(binds map[string]any) (*execNode, error) {
	if err := p.checkBinds(binds); err != nil {
		return nil, err
	}
	if p.static != nil {
		return p.static, nil
	}
	if p.compiled == nil {
		return nil, nil
	}
	return p.t.bindTree(p.compiled, binds)
}

// collectParams walks a predicate tree and gathers its placeholders,
// rejecting a name used with conflicting types or positions.
func collectParams(pred Predicate) (map[string]*paramInfo, error) {
	params := map[string]*paramInfo{}
	var walk func(p Predicate) error
	note := func(x any, inList bool) error {
		b, ok := x.(Bound)
		if !ok || b.name == "" {
			return nil
		}
		okFn := b.scalarOK
		if inList {
			okFn = b.listOK
		}
		want := &paramInfo{typ: b.typ, list: inList, ok: okFn}
		if have, dup := params[b.name]; dup {
			if have.typ != want.typ || have.list != want.list {
				return fmt.Errorf("parameter $%s used as both %s and %s", b.name, have.want(), want.want())
			}
			return nil
		}
		params[b.name] = want
		return nil
	}
	walk = func(p Predicate) error {
		switch node := p.(type) {
		case *leafPred:
			if err := note(node.low, node.kind == kindIn); err != nil {
				return err
			}
			return note(node.high, false)
		case *andPred:
			for _, kid := range node.kids {
				if err := walk(kid); err != nil {
					return err
				}
			}
		case *orPred:
			for _, kid := range node.kids {
				if err := walk(kid); err != nil {
					return err
				}
			}
		case *andNotPred:
			if err := walk(node.p); err != nil {
				return err
			}
			return walk(node.q)
		}
		return nil
	}
	if err := walk(pred); err != nil {
		return nil, err
	}
	return params, nil
}
