package table

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/coltype"
	"repro/internal/core"
)

// Aggregation executes inside the same per-segment workers as every
// other query: each segment folds its qualifying rows into one partial
// accumulator per aggregate, and the consumer merges the partials in
// segment order, so results are byte-identical at every parallelism
// level (float sums included — the merge order never changes).
//
// Per segment, each aggregate is answered at the cheapest tier the
// evaluation allows:
//
//   - summary-answered: a segment whose candidate runs are all exact
//     and cover every row, with no pending deletes, answers Min/Max
//     straight from its min/max summary (unless in-place updates have
//     widened it) and CountAll from the row count — the value slab is
//     never touched. Reported in QueryStats.SummaryAggRows.
//   - run-wholesale: exact, delete-free candidate runs fold their value
//     span in one tight loop with no residual predicate check.
//     Reported in QueryStats.WholesaleAggRows.
//   - scanned: everything else walks row by row, applying the deleted
//     bitmap and the residual check like any other executor.

// aggOp is one aggregate operator.
type aggOp int

const (
	aggSum aggOp = iota
	aggMin
	aggMax
	aggAvg
	aggCount
)

func (op aggOp) String() string {
	switch op {
	case aggSum:
		return "sum"
	case aggMin:
		return "min"
	case aggMax:
		return "max"
	case aggAvg:
		return "avg"
	case aggCount:
		return "count"
	}
	return "?"
}

// AggSpec names one aggregate of a Query.Aggregate (or GroupBy)
// execution, built with Sum, Min, Max, Avg and CountAll.
type AggSpec struct {
	op  aggOp
	col string
}

// Sum totals a numeric column over the qualifying rows. Integer
// columns accumulate exactly in int64 (uint64 values beyond 2^63 wrap);
// float columns accumulate in float64.
func Sum(col string) AggSpec { return AggSpec{op: aggSum, col: col} }

// Min returns the smallest qualifying value of a numeric or string
// column.
func Min(col string) AggSpec { return AggSpec{op: aggMin, col: col} }

// Max returns the largest qualifying value of a numeric or string
// column.
func Max(col string) AggSpec { return AggSpec{op: aggMax, col: col} }

// Avg returns the mean of a numeric column over the qualifying rows,
// as a float64.
func Avg(col string) AggSpec { return AggSpec{op: aggAvg, col: col} }

// CountAll counts the qualifying rows.
func CountAll() AggSpec { return AggSpec{op: aggCount} }

// String renders the spec, e.g. "sum(price)" or "count(*)".
func (a AggSpec) String() string {
	if a.op == aggCount {
		return "count(*)"
	}
	return fmt.Sprintf("%s(%s)", a.op, a.col)
}

// AggValue is one aggregate's typed result.
type AggValue struct {
	// Op is the operator name: "sum", "min", "max", "avg", "count".
	Op string
	// Column is the aggregated column; empty for count(*).
	Column string
	// Valid reports whether the value is defined: false when no row
	// qualified (min/max/avg are undefined over zero rows, and sum
	// follows the same convention; count is always valid).
	Valid bool
	// Float carries every numeric result as float64 (for integer
	// sums/minima/maxima it is the float64 conversion of Int).
	Float float64
	// Int carries the exact integer result when IsInt: integer-column
	// sum/min/max and count. uint64 values beyond 2^63 wrap.
	Int   int64
	IsInt bool
	// Str carries min/max over a string column when IsStr.
	Str   string
	IsStr bool
}

// String renders the value for logs, e.g. "sum(qty)=180".
func (v AggValue) String() string {
	name := v.Op + "(*)"
	if v.Column != "" {
		name = fmt.Sprintf("%s(%s)", v.Op, v.Column)
	}
	switch {
	case !v.Valid:
		return name + "=∅"
	case v.IsStr:
		return fmt.Sprintf("%s=%q", name, v.Str)
	case v.IsInt:
		return fmt.Sprintf("%s=%d", name, v.Int)
	}
	return fmt.Sprintf("%s=%v", name, v.Float)
}

// AggResult is the result set of one Query.Aggregate execution: one
// AggValue per requested spec, in request order.
type AggResult struct {
	// Rows is the number of qualifying rows the aggregates cover.
	Rows uint64
	vals []AggValue
}

// Len returns the number of aggregates.
func (r *AggResult) Len() int { return len(r.vals) }

// At returns the i-th aggregate's value, in request order.
func (r *AggResult) At(i int) AggValue { return r.vals[i] }

// Values returns all aggregate values in request order (a copy, safe to
// keep).
func (r *AggResult) Values() []AggValue { return append([]AggValue(nil), r.vals...) }

// Float returns the i-th aggregate as float64 (0 when invalid).
func (r *AggResult) Float(i int) float64 { return r.vals[i].Float }

// Int returns the i-th aggregate as int64 (0 when invalid or not
// integer-typed).
func (r *AggResult) Int(i int) int64 { return r.vals[i].Int }

// String renders every aggregate for logs.
func (r *AggResult) String() string {
	parts := make([]string, len(r.vals))
	for i, v := range r.vals {
		parts[i] = v.String()
	}
	return strings.Join(parts, " ")
}

// ---- partial accumulators ----

// partKind tags the value representation an aggPartial carries.
type partKind uint8

const (
	partNone partKind = iota // no value (zero rows, or count-only)
	partInt
	partFloat
	partStr
)

// aggPartial is one aggregate's partial result over one segment,
// merged commutatively by the consumer in segment order.
type aggPartial struct {
	rows uint64
	kind partKind
	i    int64
	f    float64
	s    string
}

// mergeInto folds partial b into a under op. Only the value merge is
// op-dependent; rows always add.
func (a *aggPartial) mergeInto(op aggOp, b aggPartial) {
	a.rows += b.rows
	if b.kind == partNone {
		return
	}
	if a.kind == partNone {
		a.kind, a.i, a.f, a.s = b.kind, b.i, b.f, b.s
		return
	}
	switch op {
	case aggSum, aggAvg:
		a.i += b.i
		a.f += b.f
	case aggMin:
		switch a.kind {
		case partInt:
			a.i = min(a.i, b.i)
		case partFloat:
			a.f = min(a.f, b.f)
		case partStr:
			a.s = min(a.s, b.s)
		}
	case aggMax:
		switch a.kind {
		case partInt:
			a.i = max(a.i, b.i)
		case partFloat:
			a.f = max(a.f, b.f)
		case partStr:
			a.s = max(a.s, b.s)
		}
	}
}

// value renders a merged partial as the spec's final AggValue.
func (p aggPartial) value(spec AggSpec) AggValue {
	v := AggValue{Op: spec.op.String(), Column: spec.col}
	if spec.op == aggCount {
		v.Valid, v.IsInt = true, true
		v.Int = int64(p.rows)
		v.Float = float64(p.rows)
		return v
	}
	if p.rows == 0 {
		return v
	}
	v.Valid = true
	if spec.op == aggAvg {
		sum := p.f
		if p.kind == partInt {
			sum = float64(p.i)
		}
		v.Float = sum / float64(p.rows)
		return v
	}
	switch p.kind {
	case partInt:
		v.IsInt = true
		v.Int = p.i
		v.Float = float64(p.i)
	case partFloat:
		v.Float = p.f
	case partStr:
		v.IsStr = true
		v.Str = p.s
	}
	return v
}

// segAgg folds the qualifying rows of one segment into a partial: rows
// one at a time (addRow), a 64-row selection mask at a time (addMask —
// how the vectorized walk hands over surviving rows), or whole live
// spans of exact candidate runs (addSpan). Implementations are typed
// per column; one segAgg serves one (aggregate, segment) pair of one
// execution.
type segAgg interface {
	addRow(local uint32)
	addMask(base int, mask uint64) // segment-local block base, surviving lanes
	addSpan(from, to int)          // segment-local, every row live and qualifying
	partial() aggPartial
}

// ---- numeric columns ----

// isIntType reports whether V is an integer type (float columns
// accumulate in float64 instead).
func isIntType[V coltype.Value]() bool {
	var zero V
	switch any(zero).(type) {
	case float32, float64:
		return false
	}
	return true
}

func (c *colState[V]) aggCheck(op aggOp) error { return nil }

// aggSummary answers op over all live rows of segment s purely from the
// segment summary. Only Min/Max are summary-answerable, and only while
// the summary is exact (no in-place update widened it). The caller
// guarantees full coverage and a delete-free segment, and fills in the
// row count.
//
//imprintvet:locks held=mu.R
func (c *colState[V]) aggSummary(op aggOp, s int) (aggPartial, bool) {
	seg := c.segs[s]
	if seg.sumWide || len(seg.vals) == 0 {
		return aggPartial{}, false
	}
	var v V
	switch op {
	case aggMin:
		v = seg.min
	case aggMax:
		v = seg.max
	default:
		return aggPartial{}, false
	}
	if isIntType[V]() {
		return aggPartial{kind: partInt, i: int64(v), f: float64(v)}, true
	}
	return aggPartial{kind: partFloat, f: float64(v)}, true
}

//imprintvet:locks held=mu.R
func (c *colState[V]) aggAcc(op aggOp, s int) segAgg {
	return &numSegAgg[V]{op: op, vals: c.segs[s].vals, isInt: isIntType[V]()}
}

// numSegAgg is the typed per-segment accumulator of a numeric column.
type numSegAgg[V coltype.Value] struct {
	op    aggOp
	vals  []V
	isInt bool
	rows  uint64
	any   bool
	m     V // min/max accumulator
	isum  int64
	fsum  float64
}

func (a *numSegAgg[V]) addRow(local uint32) { a.addVal(a.vals[local]) }

// addVal folds one unboxed value — shared by the slab path (addRow)
// and the delta-scan adapter (numDeltaAgg), so both accumulate
// identically.
func (a *numSegAgg[V]) addVal(v V) {
	switch a.op {
	case aggSum, aggAvg:
		if a.isInt {
			a.isum += int64(v)
		} else {
			a.fsum += float64(v)
		}
	case aggMin:
		if !a.any || v < a.m {
			a.m = v
		}
	case aggMax:
		if !a.any || v > a.m {
			a.m = v
		}
	}
	a.any = true
	a.rows++
}

// addMask folds the surviving lanes of one block, trailing-zero
// iteration inside the monomorphized accumulator so the interface cost
// is per block, not per row.
func (a *numSegAgg[V]) addMask(base int, mask uint64) {
	for mask != 0 {
		i := bits.TrailingZeros64(mask)
		mask &= mask - 1
		a.addRow(uint32(base + i))
	}
}

func (a *numSegAgg[V]) addSpan(from, to int) {
	vals := a.vals[from:to]
	if len(vals) == 0 {
		return
	}
	switch a.op {
	case aggSum, aggAvg:
		if a.isInt {
			var s int64
			for _, v := range vals {
				s += int64(v)
			}
			a.isum += s
		} else {
			var s float64
			for _, v := range vals {
				s += float64(v)
			}
			a.fsum += s
		}
	case aggMin:
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		if !a.any || m < a.m {
			a.m = m
		}
	case aggMax:
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		if !a.any || m > a.m {
			a.m = m
		}
	}
	a.any = true
	a.rows += uint64(len(vals))
}

func (a *numSegAgg[V]) partial() aggPartial {
	p := aggPartial{rows: a.rows}
	if a.rows == 0 {
		return p
	}
	switch a.op {
	case aggSum, aggAvg:
		if a.isInt {
			p.kind, p.i, p.f = partInt, a.isum, float64(a.isum)
		} else {
			p.kind, p.f = partFloat, a.fsum
		}
	case aggMin, aggMax:
		if a.isInt {
			p.kind, p.i, p.f = partInt, int64(a.m), float64(a.m)
		} else {
			p.kind, p.f = partFloat, float64(a.m)
		}
	}
	return p
}

// ---- string columns ----

func (c *strColState) aggCheck(op aggOp) error {
	if op == aggSum || op == aggAvg {
		return fmt.Errorf("column %q is string: %s needs a numeric column", c.name, op)
	}
	return nil
}

// aggSummary: a string segment's dictionary can hold symbols no live
// row carries anymore (updates reuse codes, deletes keep theirs), so
// min/max always fold over the code slab — never summary-answered.
//
//imprintvet:locks held=mu.R
func (c *strColState) aggSummary(op aggOp, s int) (aggPartial, bool) {
	return aggPartial{}, false
}

//imprintvet:locks held=mu.R
func (c *strColState) aggAcc(op aggOp, s int) segAgg {
	seg := c.segs[s]
	return &strSegAgg{op: op, seg: seg, codes: seg.codes()}
}

// strSegAgg folds min/max over a string segment's codes (code order is
// string order within a segment) and decodes the winner once.
type strSegAgg struct {
	op    aggOp
	seg   *strSegment
	codes []int32
	rows  uint64
	any   bool
	m     int32
}

func (a *strSegAgg) addRow(local uint32) {
	c := a.codes[local]
	if !a.any || (a.op == aggMin && c < a.m) || (a.op == aggMax && c > a.m) {
		a.m = c
	}
	a.any = true
	a.rows++
}

func (a *strSegAgg) addMask(base int, mask uint64) {
	for mask != 0 {
		i := bits.TrailingZeros64(mask)
		mask &= mask - 1
		a.addRow(uint32(base + i))
	}
}

func (a *strSegAgg) addSpan(from, to int) {
	codes := a.codes[from:to]
	if len(codes) == 0 {
		return
	}
	m := codes[0]
	if a.op == aggMin {
		for _, c := range codes[1:] {
			if c < m {
				m = c
			}
		}
		if !a.any || m < a.m {
			a.m = m
		}
	} else {
		for _, c := range codes[1:] {
			if c > m {
				m = c
			}
		}
		if !a.any || m > a.m {
			a.m = m
		}
	}
	a.any = true
	a.rows += uint64(len(codes))
}

func (a *strSegAgg) partial() aggPartial {
	p := aggPartial{rows: a.rows}
	if a.rows == 0 {
		return p
	}
	p.kind, p.s = partStr, a.seg.dict.Symbol(a.m)
	return p
}

// ---- execution ----

// aggBind is one resolved spec: its column (nil for count(*)).
type aggBind struct {
	spec AggSpec
	col  anyColumn
}

// resolveAggs validates the requested specs against the table; callers
// hold the read lock.
func (t *Table) resolveAggs(specs []AggSpec) ([]aggBind, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("table %s: Aggregate needs at least one aggregate (Sum, Min, Max, Avg, CountAll)", t.name)
	}
	binds := make([]aggBind, len(specs))
	for i, spec := range specs {
		binds[i] = aggBind{spec: spec}
		if spec.op == aggCount {
			if spec.col != "" {
				return nil, fmt.Errorf("table %s: count(*) takes no column", t.name)
			}
			continue
		}
		c, ok := t.cols[spec.col]
		if !ok {
			return nil, fmt.Errorf("table %s: no column %q", t.name, spec.col)
		}
		if err := c.aggCheck(spec.op); err != nil {
			return nil, fmt.Errorf("table %s: %w", t.name, err)
		}
		binds[i].col = c
	}
	return binds, nil
}

// runCoverage summarizes one segment's composed run list: whether the
// runs cover every block of the segment and whether all of them are
// exact (runs are disjoint and ascending by construction).
func runCoverage(runs []core.CandidateRun, blocks int) (full, allExact bool) {
	covered := 0
	allExact = true
	for _, r := range runs {
		covered += int(r.Count)
		if !r.Exact {
			allExact = false
		}
	}
	return covered == blocks, allExact
}

// aggSummaryEligible reports whether segment s can be aggregated
// without visiting rows one by one: every candidate run exact and
// covering the whole segment, with no pending deletes. Callers hold
// the read lock.
//
//imprintvet:locks held=mu.R
func (t *Table) aggSummaryEligible(s int, runs []core.CandidateRun) bool {
	n := t.segLen(s)
	full, allExact := runCoverage(runs, (n+BlockRows-1)/BlockRows)
	return full && allExact && t.deletedInSpan(s*t.segRows, s*t.segRows+n) == 0
}

// aggWalk drives one segment's qualifying rows through an aggregate
// fold: exact, delete-free runs are offered wholesale to visitSpan
// (segment-local bounds, every row live and qualifying); every other
// block arrives at visitMask as its segment-local base row plus the
// surviving-lane selection mask (deleted folded, residual evaluated).
// Callers hold the read lock.
//
//imprintvet:locks held=mu.R
func (t *Table) aggWalk(s int, ev evaluated, st *core.QueryStats, visitSpan func(from, to int), visitMask func(base int, mask uint64)) {
	base := s * t.segRows
	t.walkBlocks(s, ev, st,
		func(from, to int, exact bool) spanAction {
			if exact && visitSpan != nil && t.deletedInSpan(from, to) == 0 {
				visitSpan(from-base, to-base)
				return spanDone
			}
			return spanPerBlock
		},
		func(b int, mask uint64) bool {
			visitMask(b-base, mask)
			return true
		})
}

// aggSegment is the per-segment aggregate worker: evaluate the
// predicate, then fold each aggregate at the cheapest tier (summary /
// wholesale / scanned) the coverage allows.
//
//imprintvet:locks held=mu.R
func (q *Query) aggSegment(en *execNode, s int, binds []aggBind) segOut {
	var o segOut
	t := q.t
	ev := t.evalSegment(en, s, q.opts, &o.st, false)
	o.aggs = make([]aggPartial, len(binds))
	n := t.segLen(s)
	if t.aggSummaryEligible(s, ev.runs) {
		o.count = uint64(n)
		for i, b := range binds {
			if b.col == nil { // count(*): the row count, no slab touched
				o.aggs[i] = aggPartial{rows: uint64(n)}
				o.st.SummaryAggRows += uint64(n)
				continue
			}
			if p, ok := b.col.aggSummary(b.spec.op, s); ok {
				p.rows = uint64(n)
				o.aggs[i] = p
				o.st.SummaryAggRows += uint64(n)
				continue
			}
			acc := b.col.aggAcc(b.spec.op, s)
			acc.addSpan(0, n)
			o.aggs[i] = acc.partial()
			o.st.WholesaleAggRows += uint64(n)
		}
		releaseEval(&ev)
		return o
	}
	accs := make([]segAgg, len(binds))
	for i, b := range binds {
		if b.col != nil {
			accs[i] = b.col.aggAcc(b.spec.op, s)
		}
	}
	t.aggWalk(s, ev, &o.st,
		func(from, to int) {
			span := uint64(to - from)
			o.count += span
			for _, acc := range accs {
				if acc == nil {
					// count(*) tallies the span wholesale, values untouched.
					o.st.SummaryAggRows += span
					continue
				}
				acc.addSpan(from, to)
				o.st.WholesaleAggRows += span
			}
		},
		func(base int, mask uint64) {
			o.count += uint64(bits.OnesCount64(mask))
			for _, acc := range accs {
				if acc != nil {
					acc.addMask(base, mask)
				}
			}
		})
	for i, acc := range accs {
		if acc != nil {
			o.aggs[i] = acc.partial()
		} else {
			o.aggs[i] = aggPartial{rows: o.count}
		}
	}
	releaseEval(&ev)
	return o
}

// deltaAggFold folds the qualifying buffered delta rows of one
// captured view into merged (capped so already + folded never exceeds
// Limit on limited queries) and returns the number of rows folded.
// Delta ids all follow their table's sealed ids, so folding after the
// segment merge preserves the deterministic merge order. Callers hold
// the read lock the view was captured under.
//
//imprintvet:locks held=mu.R
func (q *Query) deltaAggFold(view *deltaView, en *execNode, binds []aggBind, merged []aggPartial, already uint64, st *core.QueryStats) uint64 {
	if view == nil {
		return 0
	}
	match := view.matcher(en)
	accs := make([]deltaAgg, len(binds))
	cis := make([]int, len(binds))
	for i, b := range binds {
		if b.col != nil {
			accs[i] = b.col.deltaAgg(b.spec.op)
			cis[i] = view.colIdx(b.spec.col)
		}
	}
	var rows uint64
	limit := uint64(q.limit)
	view.scan(match, st, func(_ int, row []any) bool {
		for i, acc := range accs {
			if acc != nil {
				acc.add(row[cis[i]])
			}
		}
		rows++
		return !q.limited || already+rows < limit
	})
	for i := range merged {
		if accs[i] != nil {
			merged[i].mergeInto(binds[i].spec.op, accs[i].partial())
		} else {
			merged[i].mergeInto(binds[i].spec.op, aggPartial{rows: rows})
		}
	}
	return rows
}

// Aggregate executes the query as a set of aggregates over the
// qualifying rows, computed inside the per-segment workers and merged
// in segment order — results are identical at every parallelism level.
// Fully-selected segments push down: Min/Max answer from the segment
// min/max summary and count(*) from the row count without touching the
// value slab (QueryStats.SummaryAggRows), and exact candidate runs
// fold their spans wholesale with no residual check
// (QueryStats.WholesaleAggRows). Works on ad-hoc queries and prepared
// executions alike (bind parameters first).
//
// A query with Limit aggregates only the first Limit qualifying rows
// in ascending id order; that path folds row by row (no pushdown).
// OrderBy does not apply to aggregates and is rejected.
func (q *Query) Aggregate(specs ...AggSpec) (*AggResult, core.QueryStats, error) {
	if q.t.shard != nil {
		return q.shardAggregate(specs)
	}
	q.t.mu.RLock()
	defer q.t.mu.RUnlock()
	var st core.QueryStats
	if q.order != nil {
		return nil, st, fmt.Errorf("table %s: OrderBy does not apply to Aggregate (aggregates are order-independent)", q.t.name)
	}
	binds, err := q.t.resolveAggs(specs)
	if err != nil {
		return nil, st, err
	}
	if err := q.checkProjection(); err != nil {
		return nil, st, err
	}
	res := &AggResult{vals: make([]AggValue, len(binds))}
	merged := make([]aggPartial, len(binds))
	finish := func() *AggResult {
		for i, b := range binds {
			res.vals[i] = merged[i].value(b.spec)
		}
		return res
	}
	if q.limited && q.limit == 0 {
		return finish(), st, nil
	}
	en, err := q.bind()
	if err != nil {
		return nil, st, err
	}
	if q.limited {
		return q.limitedAggregate(en, binds, merged, finish, &st)
	}
	nsegs := q.t.segCount()
	if err := q.t.forEachSegment(q.opts.Ctx, nsegs, resolveParallelism(q.opts, nsegs),
		func(s int) segOut { return q.aggSegment(en, s, binds) },
		func(s int, o segOut) bool {
			st.Add(o.st)
			res.Rows += o.count
			for i := range merged {
				merged[i].mergeInto(binds[i].spec.op, o.aggs[i])
			}
			return true
		}); err != nil {
		return nil, st, q.t.abortErr(err)
	}
	res.Rows += q.deltaAggFold(q.t.deltaViewLocked(), en, binds, merged, res.Rows, &st)
	return finish(), st, nil
}

// limitedAggregate folds the first q.limit qualifying rows in id
// order: segment workers materialize capped id lists (the IDs
// machinery) and the consumer folds them row by row, so the cap is
// applied deterministically across segments.
//
//imprintvet:locks held=mu.R
func (q *Query) limitedAggregate(en *execNode, binds []aggBind, merged []aggPartial, finish func() *AggResult, st *core.QueryStats) (*AggResult, core.QueryStats, error) {
	taken := 0
	var rows uint64
	nsegs := q.t.segCount()
	err := q.t.forEachSegment(q.opts.Ctx, nsegs, resolveParallelism(q.opts, nsegs),
		func(s int) segOut { return q.collectIDs(en, s) },
		func(s int, o segOut) bool {
			st.Add(o.st)
			ids := *o.ids
			defer putIDScratch(o.ids)
			take := len(ids)
			if q.limit-taken < take {
				take = q.limit - taken
			}
			if take > 0 {
				base := s * q.t.segRows
				accs := make([]segAgg, len(binds))
				for i, b := range binds {
					if b.col != nil {
						accs[i] = b.col.aggAcc(b.spec.op, s)
					}
				}
				for _, id := range ids[:take] {
					for _, acc := range accs {
						if acc != nil {
							acc.addRow(id - uint32(base))
						}
					}
				}
				for i, acc := range accs {
					if acc != nil {
						merged[i].mergeInto(binds[i].spec.op, acc.partial())
					} else {
						merged[i].mergeInto(binds[i].spec.op, aggPartial{rows: uint64(take)})
					}
				}
				taken += take
				rows += uint64(take)
			}
			return taken < q.limit
		})
	if err != nil {
		return nil, *st, q.t.abortErr(err)
	}
	if taken < q.limit {
		n := q.deltaAggFold(q.t.deltaViewLocked(), en, binds, merged, uint64(taken), st)
		rows += n
		taken += int(n)
	}
	res := finish()
	res.Rows = rows
	return res, *st, nil
}
