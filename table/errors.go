package table

import "fmt"

// ShardDenseError reports an AddColumn / AddStringColumn rejected on a
// sharded table because its global id space has holes: splitting a flat
// value slice across shards is only well defined when ids are densely
// packed (serial commits, or a fresh/compacted table), and concurrent
// commits can leave gaps no flat slice can address.
//
// Callers that want to recover programmatically match it with
// errors.As and read which shard broke density and by how much; the
// fix is to add columns before concurrent writers start, or after a
// fresh load/compaction repacks the id space.
type ShardDenseError struct {
	Table  string // table name
	Column string // column whose install was rejected
	Shard  int    // first shard whose row count breaks the dense layout
	Have   int    // rows that shard actually holds
	Want   int    // rows a dense layout would give it
}

func (e *ShardDenseError) Error() string {
	return fmt.Sprintf("table %s: column %q: shards are not densely packed (shard %d holds %d rows, dense layout needs %d) — concurrent commits left id holes; add columns before writing or after a fresh load",
		e.Table, e.Column, e.Shard, e.Have, e.Want)
}
