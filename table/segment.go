package table

import (
	"repro/internal/coltype"
	"repro/internal/core"
	"repro/internal/zonemap"
)

// DefaultSegmentRows is the number of rows one storage segment holds
// when TableOptions.SegmentRows is zero. Each segment owns its value
// slab and its own secondary index, so appends and saturation rebuilds
// stay segment-local and queries fan segments out across workers.
const DefaultSegmentRows = 65536

// segment is one horizontal slice of a numeric column: a value slab of
// at most segRows values, the secondary index built over exactly that
// slab, and a [min, max] summary used to prune the whole segment when a
// predicate provably selects nothing in it. Only the column's last
// segment (the active tail) ever grows; once full it is sealed and a
// fresh tail starts.
type segment[V coltype.Value] struct {
	vals []V
	ix   *core.Index[V]
	zm   *zonemap.Index[V]
	// min/max summarize the values ever stored in the segment: set on
	// ingest, widened by in-place updates, recomputed exactly on rebuild
	// and compact. Conservative (deleted rows keep their contribution),
	// which is sound for pruning — a pruned segment provably holds no
	// qualifying value.
	min, max V
	// sumWide marks the summary as possibly over-covering: an in-place
	// update widened it without knowing whether the replaced value was
	// the extremum. A wide summary still prunes soundly, but it can no
	// longer answer Min/Max aggregates; rebuild recomputes it exactly
	// and clears the mark.
	sumWide bool
}

// summarize computes the [min, max] of vals; ok is false when vals is
// empty. The single definition behind segment summaries (ingest,
// rebuild, persistence load) so pruning semantics cannot drift.
func summarize[V coltype.Value](vals []V) (lo, hi V, ok bool) {
	if len(vals) == 0 {
		return lo, hi, false
	}
	lo, hi = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, true
}

// extend appends a chunk of values to the segment and grows its index
// and summary. The caller guarantees the chunk fits the segment's
// remaining capacity.
func (s *segment[V]) extend(chunk []V, mode IndexMode, opts core.Options) {
	fresh := len(s.vals) == 0
	s.vals = append(s.vals, chunk...)
	if lo, hi, ok := summarize(chunk); ok {
		if fresh {
			s.min, s.max = lo, hi
		} else {
			s.min, s.max = min(s.min, lo), max(s.max, hi)
		}
	}
	switch mode {
	case Imprints:
		if s.ix == nil {
			s.ix = core.Build(s.vals, opts)
		} else {
			// Append wants the whole slab (committed prefix + new rows):
			// the append above may have reallocated it.
			s.ix.Append(s.vals)
		}
	case Zonemap:
		if s.zm == nil {
			s.zm = zonemap.Build(s.vals, zonemap.Options{})
		} else {
			s.zm.Append(s.vals)
		}
	}
}

// widen absorbs an in-place update: the summary and the covering index
// entry grow to also map v (never shrink — imprints must not yield
// false negatives).
func (s *segment[V]) widen(local int, v V) {
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.sumWide = true
	if s.ix != nil {
		s.ix.MarkUpdated(local, v)
	}
	if s.zm != nil {
		s.zm.Widen(local, v)
	}
}

// rebuild reconstructs the segment's index from its current values and
// recomputes the summary exactly (dropping the widening accumulated by
// updates).
func (s *segment[V]) rebuild(mode IndexMode, opts core.Options) {
	s.ix, s.zm = nil, nil
	s.sumWide = false
	if len(s.vals) == 0 {
		return
	}
	s.min, s.max, _ = summarize(s.vals)
	switch mode {
	case Imprints:
		s.ix = core.Build(s.vals, opts)
	case Zonemap:
		s.zm = zonemap.Build(s.vals, zonemap.Options{})
	}
}

// indexBytes returns the segment's secondary-index footprint.
func (s *segment[V]) indexBytes() int64 {
	switch {
	case s.ix != nil:
		return s.ix.SizeBytes()
	case s.zm != nil:
		return s.zm.SizeBytes()
	}
	return 0
}
