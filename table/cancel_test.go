package table

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// cancelTable builds a multi-segment table so the fan-out has segments
// to skip when a query is canceled.
func cancelTable(t *testing.T) *Table {
	t.Helper()
	const rows = 64 * 64 // 64 segments of 64 rows
	vals := make([]int64, rows)
	for i := range vals {
		vals[i] = int64(i % 1000)
	}
	tb := NewWithOptions("cancel", TableOptions{SegmentRows: 64})
	if err := AddColumn(tb, "v", vals, Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestExpiredDeadlineDoesNoSegmentWork pins the acceptance criterion: a
// query whose deadline already expired returns a cancellation error
// without scanning any segment — QueryStats shows zero probes and zero
// comparisons because no worker ever started.
func TestExpiredDeadlineDoesNoSegmentWork(t *testing.T) {
	tb := cancelTable(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, par := range []int{1, 4} {
		opts := SelectOptions{Ctx: ctx, Parallelism: par}
		_, st, err := tb.Select().Where(Range[int64]("v", 100, 200)).Options(opts).Count()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("par=%d: want DeadlineExceeded, got %v", par, err)
		}
		if st.Probes != 0 || st.Comparisons != 0 || st.CachelinesScanned != 0 {
			t.Fatalf("par=%d: expired deadline still scanned: %+v", par, st)
		}
		_, st, err = tb.Select().Where(Range[int64]("v", 100, 200)).Options(opts).IDs()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("par=%d IDs: want DeadlineExceeded, got %v", par, err)
		}
		if st.Probes != 0 || st.Comparisons != 0 {
			t.Fatalf("par=%d IDs: expired deadline still scanned: %+v", par, st)
		}
	}
}

// TestCancelBetweenSegments cancels mid-iteration: the serial Rows path
// checks the context between segments, so yielded rows stop shortly
// after the cancel and Err reports the cancellation.
func TestCancelBetweenSegments(t *testing.T) {
	tb := cancelTable(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q := tb.Select("v").Where(AtLeast[int64]("v", 0)).
		Options(SelectOptions{Ctx: ctx, Parallelism: 1})
	seen := 0
	for range q.Rows() {
		seen++
		if seen == 10 {
			cancel()
		}
	}
	if !errors.Is(q.Err(), context.Canceled) {
		t.Fatalf("want context.Canceled from Err, got %v", q.Err())
	}
	// The first segment (64 rows) was in flight when the cancel landed;
	// everything after the segment boundary following the cancel must be
	// skipped. Two segments of slack tolerate the already-collected one.
	if seen >= tb.Rows() || seen > 3*64 {
		t.Fatalf("cancellation did not stop the iteration: saw %d of %d rows", seen, tb.Rows())
	}
}

// TestCancelSurfacesFromEveryExecutor runs each executor with an
// already-canceled context and checks the wrapped error surface.
func TestCancelSurfacesFromEveryExecutor(t *testing.T) {
	tb := cancelTable(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := SelectOptions{Ctx: ctx, Parallelism: 2}
	pred := Range[int64]("v", 0, 500)

	if _, _, err := tb.Select().Where(pred).Options(opts).Count(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Count: %v", err)
	}
	if _, _, err := tb.Select().Where(pred).Options(opts).IDs(); !errors.Is(err, context.Canceled) {
		t.Fatalf("IDs: %v", err)
	}
	if _, _, err := tb.Select().Where(pred).Options(opts).Aggregate(Sum("v")); !errors.Is(err, context.Canceled) {
		t.Fatalf("Aggregate: %v", err)
	}
	if _, _, err := tb.Select().Where(pred).Options(opts).GroupBy("v").Aggregate(CountAll()); !errors.Is(err, context.Canceled) {
		t.Fatalf("GroupBy: %v", err)
	}
	if _, _, err := tb.Select().Where(pred).Options(opts).OrderBy(Desc("v")).Limit(5).IDs(); !errors.Is(err, context.Canceled) {
		t.Fatalf("OrderBy: %v", err)
	}
	if _, _, err := tb.Select().Where(pred).Options(opts).Limit(7).Aggregate(CountAll()); !errors.Is(err, context.Canceled) {
		t.Fatalf("limited Aggregate: %v", err)
	}
	if _, err := tb.Select().Where(pred).Options(opts).Explain(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Explain: %v", err)
	}

	// A nil context and a live context leave results untouched.
	want, _, err := tb.Select().Where(pred).Count()
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := tb.Select().Where(pred).
		Options(SelectOptions{Ctx: context.Background(), Parallelism: 2}).Count()
	if err != nil || got != want {
		t.Fatalf("live context changed the result: got %d want %d err %v", got, want, err)
	}
}
