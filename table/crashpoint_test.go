package table

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/wal"
)

// Crash-point oracle: run a fixed ingest workload against a fault
// injector, kill the filesystem at every single injection point, and
// prove recovery always lands on a serial prefix of the workload that
// covers at least the acknowledged operations — no torn state, no lost
// acks, no resurrections.

// crashOp is one workload step. durable means a nil error is a
// durability acknowledgement: a commit, update or delete returns only
// after its record is synced, so recovery must preserve it. Compact
// and seal are maintenance: compaction is logged without a durability
// wait (prefix-ordering covers it) and sealing is not logged at all,
// so neither advances the acknowledged frontier.
type crashOp struct {
	name    string
	durable bool
	run     func(*Table) error
}

func crashOps() []crashOp {
	return []crashOp{
		{"commit-0-30", true, func(tb *Table) error { q, c := seqRows(0, 30); return commitQC(tb, q, c) }},
		{"commit-30-40", true, func(tb *Table) error { q, c := seqRows(30, 40); return commitQC(tb, q, c) }},
		{"update-qty-5", true, func(tb *Table) error { return Update(tb, "qty", 5, int64(1111)) }},
		{"update-city-12", true, func(tb *Table) error { return tb.UpdateString("city", 12, "Xanadu") }},
		{"delete-3", true, func(tb *Table) error { return tb.Delete(3) }},
		{"seal", false, func(tb *Table) error { tb.SealDelta(); return nil }},
		{"commit-70-30", true, func(tb *Table) error { q, c := seqRows(70, 30); return commitQC(tb, q, c) }},
		{"delete-80", true, func(tb *Table) error { return tb.Delete(80) }},
		{"compact", false, func(tb *Table) error { tb.Compact(); return nil }},
		{"commit-100-20", true, func(tb *Table) error { q, c := seqRows(100, 20); return commitQC(tb, q, c) }},
		{"delete-50", true, func(tb *Table) error { return tb.Delete(50) }},
	}
}

// mkCrashSchema builds the workload's empty qty/city schema with delta
// ingest on and no WAL attached yet.
func mkCrashSchema(t *testing.T) *Table {
	t.Helper()
	tb := NewWithOptions("orders", TableOptions{SegmentRows: 64})
	if err := AddColumn(tb, "qty", []int64{}, Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("city", []string{}, Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := tb.EnableDeltaIngest(IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	return tb
}

// runCrashWorkload attaches a WAL through fs and applies ops until the
// first failure (fail-stop), returning the acknowledged frontier: the
// number of leading ops whose durability the caller was promised.
func runCrashWorkload(t *testing.T, fs faultfs.FS, ops []crashOp) int {
	t.Helper()
	tb := mkCrashSchema(t)
	if _, err := tb.EnableWAL(WALOptions{Dir: "wal", Policy: wal.SyncAlways, FS: fs}); err != nil {
		return 0
	}
	acked := 0
	for i, op := range ops {
		if err := op.run(tb); err != nil {
			return acked
		}
		if op.durable {
			acked = i + 1
		}
	}
	return acked
}

// TestCrashPointOracle is the exhaustive crash test: for every
// injection point k and both failure modes, the workload is killed at
// its k-th filesystem mutation, the machine "crashes" (volatile state
// discarded), and the recovered table must equal the serial replay of
// some workload prefix no shorter than the acknowledged one.
func TestCrashPointOracle(t *testing.T) {
	ops := crashOps()

	// Serial oracle: the table contents after every prefix of the
	// workload, computed WAL-free.
	states := make([]string, len(ops)+1)
	shadow := mkCrashSchema(t)
	states[0] = dumpTable(t, shadow)
	for i, op := range ops {
		if err := op.run(shadow); err != nil {
			t.Fatalf("shadow op %s: %v", op.name, err)
		}
		states[i+1] = dumpTable(t, shadow)
	}

	// Unarmed pass: everything must succeed, and it tells us how many
	// injection points the workload has.
	mem := faultfs.NewMemFS()
	inj := faultfs.NewInjector(mem)
	if acked := runCrashWorkload(t, inj, ops); acked != len(ops) {
		t.Fatalf("unarmed workload acked %d/%d ops", acked, len(ops))
	}
	n := inj.Ops()
	if n < 10 {
		t.Fatalf("workload crossed only %d injection points; the oracle is not covering the write path", n)
	}

	for _, mode := range []faultfs.Mode{faultfs.FailError, faultfs.FailTorn} {
		for k := 1; k <= n; k++ {
			mem := faultfs.NewMemFS()
			inj := faultfs.NewInjector(mem)
			inj.Arm(k, mode)
			acked := runCrashWorkload(t, inj, ops)
			if acked == len(ops) {
				t.Fatalf("mode %d k=%d: armed workload acked every op without failing", mode, k)
			}
			mem.Crash()
			inj.Arm(0, mode) // disarm for recovery

			rec := mkCrashSchema(t)
			rep, err := rec.EnableWAL(WALOptions{Dir: "wal", Policy: wal.SyncAlways, FS: inj})
			if err != nil {
				t.Fatalf("mode %d k=%d: recovery failed after %d acked ops: %v\ndurable:\n%s",
					mode, k, acked, err, mem.DumpDurable())
			}
			got := dumpTable(t, rec)
			match := -1
			for m := acked; m <= len(ops); m++ {
				if states[m] == got {
					match = m
					break
				}
			}
			if match < 0 {
				// Diagnose: is it a state before the acknowledged frontier
				// (lost ack) or no prefix at all (torn state)?
				for m := 0; m < acked; m++ {
					if states[m] == got {
						t.Fatalf("mode %d k=%d: LOST ACK: recovered state is prefix %d but %d ops were acknowledged (recovery %s)",
							mode, k, m, acked, rep)
					}
				}
				t.Fatalf("mode %d k=%d: TORN STATE: recovered table matches no serial prefix (acked %d, recovery %s)\ngot:\n%s",
					mode, k, acked, rep, got)
			}
		}
	}
}
