package table

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/faultfs"
)

// mkPersistTable builds a deterministic two-column (int64 + string)
// table spanning several segments at 64 rows/segment.
func mkPersistTable(t *testing.T, rows int) *Table {
	t.Helper()
	tb := NewWithOptions("orders", TableOptions{SegmentRows: 64})
	qty := make([]int64, rows)
	city := make([]string, rows)
	cities := []string{"Amsterdam", "Berlin", "Oslo", "Rome"}
	for i := 0; i < rows; i++ {
		qty[i] = int64(i % 97)
		city[i] = cities[i%len(cities)]
	}
	if err := AddColumn(tb, "qty", qty, Imprints, core.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("city", city, Imprints, core.Options{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	return tb
}

// frame is one [len][payload][crc] section located inside an image.
type frame struct {
	payload int // offset of the payload
	n       int // payload length
}

// walkFrames walks the section frames of an image starting just past
// its magic+version prefix (or of a v5 image embedded in a v6
// envelope).
func walkFrames(t *testing.T, img []byte) []frame {
	t.Helper()
	off := 6 // magic (4) + version (2)
	var out []frame
	for off < len(img) {
		if off+4 > len(img) {
			t.Fatalf("frame walk: truncated length prefix at %d", off)
		}
		n := int(binary.LittleEndian.Uint32(img[off:]))
		if off+4+n+4 > len(img) {
			t.Fatalf("frame walk: section at %d overruns image (%d payload bytes)", off, n)
		}
		out = append(out, frame{payload: off + 4, n: n})
		off += 4 + n + 4
	}
	return out
}

// secRef is the provenance a corrupted section must be reported with.
type secRef struct {
	col     string
	seg     int
	section string
}

// v5SectionRefs is the section sequence of mkPersistTable's image:
// colhdr corruption is detected before the column name is parsed, so
// those errors carry an empty column name.
func v5SectionRefs(nsegs int) []secRef {
	refs := []secRef{{"", -1, secHeader}, {"", -1, secColHdr}}
	for i := 0; i < nsegs; i++ {
		refs = append(refs, secRef{"qty", i, secSlab}, secRef{"qty", i, secIndex})
	}
	refs = append(refs, secRef{"", -1, secColHdr})
	for i := 0; i < nsegs; i++ {
		refs = append(refs, secRef{"city", i, secDict}, secRef{"city", i, secIndex})
	}
	return refs
}

// flipBit returns a copy of img with one bit flipped inside fr's
// payload.
func flipBit(img []byte, fr frame) []byte {
	bad := append([]byte(nil), img...)
	bad[fr.payload+fr.n/2] ^= 0x40
	return bad
}

// TestPersistCorruptEverySection flips one bit in every section of a
// v5 image and asserts each load fails loud with a typed
// *CorruptSegmentError naming exactly the damaged section.
func TestPersistCorruptEverySection(t *testing.T) {
	tb := mkPersistTable(t, 160) // 3 segments: 64+64+32
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	if v := binary.LittleEndian.Uint16(img[4:]); v != tableVersionCRC {
		t.Fatalf("image version %d, want %d", v, tableVersionCRC)
	}
	frames := walkFrames(t, img)
	refs := v5SectionRefs(3)
	if len(frames) != len(refs) {
		t.Fatalf("image has %d sections, want %d", len(frames), len(refs))
	}
	for i, fr := range frames {
		want := refs[i]
		_, err := Read(bytes.NewReader(flipBit(img, fr)))
		if err == nil {
			t.Fatalf("section %d (%s %s): corrupt image loaded cleanly", i, want.col, want.section)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("section %d: error does not unwrap to ErrCorrupt: %v", i, err)
		}
		var cse *CorruptSegmentError
		if !errors.As(err, &cse) {
			t.Fatalf("section %d: error is not a *CorruptSegmentError: %v", i, err)
		}
		if cse.Section != want.section || cse.Column != want.col || cse.Segment != want.seg {
			t.Errorf("section %d: reported (col %q, seg %d, %s), want (col %q, seg %d, %s)",
				i, cse.Column, cse.Segment, cse.Section, want.col, want.seg, want.section)
		}
		if cse.Got == cse.Want {
			t.Errorf("section %d: checksum mismatch not carried in error: %v", i, cse)
		}
		if cse.Shard != -1 {
			t.Errorf("section %d: unsharded image reported shard %d", i, cse.Shard)
		}
	}
}

// TestPersistQuarantine corrupts two sections of the same segment in
// different columns and asserts a Quarantine load succeeds degraded:
// the segment's rows are marked deleted exactly once, the rest of the
// table serves unharmed, and the casualty list names both sections.
func TestPersistQuarantine(t *testing.T) {
	tb := mkPersistTable(t, 160)
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	frames := walkFrames(t, img)
	// Section layout: 0 header, 1 qty colhdr, 2-7 qty slab/index x3,
	// 8 city colhdr, 9-14 city dict/index x3.
	bad := flipBit(img, frames[4]) // qty segment 1 slab
	bad = flipBit(bad, frames[12]) // city segment 1 index
	got, rep, err := ReadWithOptions(bytes.NewReader(bad), LoadOptions{Quarantine: true})
	if err != nil {
		t.Fatalf("quarantine load failed: %v", err)
	}
	if !rep.Degraded() || len(rep.Quarantined) != 2 {
		t.Fatalf("want 2 quarantined segments, got %+v", rep)
	}
	wantQ := []QuarantinedSegment{
		{Shard: -1, Column: "qty", Segment: 1, Section: secSlab, Rows: 64},
		{Shard: -1, Column: "city", Segment: 1, Section: secIndex, Rows: 64},
	}
	for i, want := range wantQ {
		q := rep.Quarantined[i]
		if q.Shard != want.Shard || q.Column != want.Column || q.Segment != want.Segment ||
			q.Section != want.Section || q.Rows != want.Rows {
			t.Errorf("casualty %d: got %+v, want %+v", i, q, want)
		}
		if q.Err == "" {
			t.Errorf("casualty %d: empty error text", i)
		}
	}
	if qs := got.Quarantined(); len(qs) != 2 {
		t.Errorf("table reports %d quarantined segments, want 2", len(qs))
	}
	// Segment 1 (rows 64..127) is deleted once, not once per casualty.
	if lr := got.LiveRows(); lr != 96 {
		t.Errorf("LiveRows = %d, want 96", lr)
	}
	if got.Rows() != 160 {
		t.Errorf("Rows = %d, want 160", got.Rows())
	}
	row, err := got.ReadRow(10)
	if err != nil {
		t.Fatalf("ReadRow(10): %v", err)
	}
	if row["qty"].(int64) != 10 || row["city"].(string) != "Oslo" {
		t.Errorf("row 10 = %v, want qty 10 city Oslo", row)
	}
	if _, err := got.ReadRow(70); err == nil {
		t.Error("ReadRow(70) of a quarantined segment succeeded")
	}
	row, err = got.ReadRow(150)
	if err != nil {
		t.Fatalf("ReadRow(150): %v", err)
	}
	if row["qty"].(int64) != int64(150%97) {
		t.Errorf("row 150 qty = %v, want %d", row["qty"], 150%97)
	}

	// A degraded table cannot re-persist (and launder the damage) while
	// its quarantined rows are pending deletes; Compact unblocks it.
	if err := got.Write(&bytes.Buffer{}); err == nil {
		t.Error("Write of a degraded table succeeded; want refusal on pending deletes")
	}
	got.Compact()
	var buf2 bytes.Buffer
	if err := got.Write(&buf2); err != nil {
		t.Fatalf("Write after Compact: %v", err)
	}
	again, err := Read(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatalf("reload after Compact: %v", err)
	}
	if again.Rows() != 96 {
		t.Errorf("compacted reload has %d rows, want 96", again.Rows())
	}
}

// TestPersistQuarantineHeaderStillFatal asserts header and colhdr
// damage fails the load even under Quarantine: without them nothing
// downstream can be interpreted.
func TestPersistQuarantineHeaderStillFatal(t *testing.T) {
	tb := mkPersistTable(t, 160)
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	frames := walkFrames(t, img)
	for _, tc := range []struct {
		frame   int
		section string
	}{
		{0, secHeader},
		{1, secColHdr},
		{8, secColHdr},
	} {
		_, _, err := ReadWithOptions(bytes.NewReader(flipBit(img, frames[tc.frame])), LoadOptions{Quarantine: true})
		if err == nil {
			t.Fatalf("corrupt %s section loaded under quarantine", tc.section)
		}
		var cse *CorruptSegmentError
		if !errors.As(err, &cse) || cse.Section != tc.section {
			t.Errorf("corrupt %s: got %v", tc.section, err)
		}
	}
}

// TestPersistCorruptSharded corrupts a v6 sharded envelope: envelope
// header damage and per-shard section damage must both surface as
// typed errors carrying the shard index, and quarantine must contain
// per-shard damage.
func TestPersistCorruptSharded(t *testing.T) {
	tb := NewWithOptions("orders", TableOptions{SegmentRows: 64, Shards: 2})
	rows := 100
	qty := make([]int64, rows)
	city := make([]string, rows)
	for i := 0; i < rows; i++ {
		qty[i] = int64(i)
		city[i] = fmt.Sprintf("c%d", i%5)
	}
	if err := AddColumn(tb, "qty", qty, Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("city", city, Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	if v := binary.LittleEndian.Uint16(img[4:]); v != shardVersionCRC {
		t.Fatalf("image version %d, want %d", v, shardVersionCRC)
	}

	// Envelope header: magic+version, then one framed section.
	hn := int(binary.LittleEndian.Uint32(img[6:]))
	_, err := Read(bytes.NewReader(flipBit(img, frame{payload: 10, n: hn})))
	var cse *CorruptSegmentError
	if !errors.As(err, &cse) || cse.Section != secHeader || cse.Shard != -1 {
		t.Fatalf("corrupt v6 header: got %v", err)
	}

	// Locate shard 1's embedded v5 image: after the header frame each
	// shard is a u64 length followed by that many image bytes.
	off := 6 + 4 + hn + 4
	n0 := int(binary.LittleEndian.Uint64(img[off:]))
	off1 := off + 8 + n0
	n1 := int(binary.LittleEndian.Uint64(img[off1:]))
	v5start := off1 + 8
	sub := walkFrames(t, img[v5start:v5start+n1])
	// Shard 1's qty slab, segment 0: header, colhdr, slab.
	slab := frame{payload: v5start + sub[2].payload, n: sub[2].n}

	_, err = Read(bytes.NewReader(flipBit(img, slab)))
	if !errors.As(err, &cse) {
		t.Fatalf("corrupt shard slab: got %v", err)
	}
	if cse.Shard != 1 || cse.Column != "qty" || cse.Segment != 0 || cse.Section != secSlab {
		t.Errorf("corrupt shard slab reported as %+v", cse)
	}

	got, rep, err := ReadWithOptions(bytes.NewReader(flipBit(img, slab)), LoadOptions{Quarantine: true})
	if err != nil {
		t.Fatalf("sharded quarantine load: %v", err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Shard != 1 {
		t.Fatalf("want one shard-1 casualty, got %+v", rep.Quarantined)
	}
	if lr, want := got.LiveRows(), got.Rows()-rep.Quarantined[0].Rows; lr != want {
		t.Errorf("LiveRows = %d, want %d", lr, want)
	}
}

// uniformPersistTable builds a table whose every qty value is v, so a
// reopened image is attributable to exactly one writer.
func uniformPersistTable(t *testing.T, v int64) *Table {
	t.Helper()
	tb := NewWithOptions("orders", TableOptions{SegmentRows: 64})
	qty := make([]int64, 100)
	city := make([]string, 100)
	for i := range qty {
		qty[i] = v
		city[i] = fmt.Sprintf("city-%d", v)
	}
	if err := AddColumn(tb, "qty", qty, Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("city", city, Imprints, core.Options{}); err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestWriteFileAtomic crashes WriteFile at every injection point and
// asserts the durable image afterwards is always loadable and always
// exactly the old or the new table — never a torn mix.
func TestWriteFileAtomic(t *testing.T) {
	for _, mode := range []faultfs.Mode{faultfs.FailError, faultfs.FailTorn} {
		mem := faultfs.NewMemFS()
		inj := faultfs.NewInjector(mem)
		tbA := uniformPersistTable(t, 1)
		tbB := uniformPersistTable(t, 2)
		tbA.fsys, tbB.fsys = inj, inj
		const path = "orders.ctbl"

		if err := tbA.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		inj.Arm(0, mode) // unarmed, but reset the op counter
		if err := tbB.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		n := inj.Ops()
		if n < 4 {
			t.Fatalf("WriteFile took only %d mutating fs operations", n)
		}
		for k := 1; k <= n; k++ {
			inj.Arm(0, mode)
			if err := tbA.WriteFile(path); err != nil {
				t.Fatalf("mode %d k=%d: baseline write: %v", mode, k, err)
			}
			inj.Arm(k, mode)
			if err := tbB.WriteFile(path); err == nil {
				t.Fatalf("mode %d k=%d: armed WriteFile reported success", mode, k)
			}
			mem.Crash()
			inj.Arm(0, mode)
			got, _, err := Open(path, LoadOptions{FS: inj})
			if err != nil {
				t.Fatalf("mode %d k=%d: reopen after crash: %v\ndurable:\n%s", mode, k, err, mem.DumpDurable())
			}
			row, err := got.ReadRow(0)
			if err != nil {
				t.Fatalf("mode %d k=%d: %v", mode, k, err)
			}
			v := row["qty"].(int64)
			if v != 1 && v != 2 {
				t.Fatalf("mode %d k=%d: row 0 qty = %d, want 1 or 2", mode, k, v)
			}
			// The whole image must belong to one writer.
			for id := 0; id < got.Rows(); id += 13 {
				row, err := got.ReadRow(id)
				if err != nil {
					t.Fatalf("mode %d k=%d row %d: %v", mode, k, id, err)
				}
				if row["qty"].(int64) != v || row["city"].(string) != fmt.Sprintf("city-%d", v) {
					t.Fatalf("mode %d k=%d: torn image: row %d = %v amid qty %d", mode, k, id, row, v)
				}
			}
		}
	}
}
