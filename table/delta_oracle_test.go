package table

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// Snapshot-isolation oracle for the LSM-style write path: one writer
// streams randomized atomic mutations (batch appends, updates, string
// updates, deletes) while the background sealer concurrently moves
// rows from the delta store into sealed segments and reader goroutines
// probe the table with single-call aggregates. Every probe is one
// snapshot (one read-lock acquisition), so its result must equal the
// table's state after exactly k writer operations, for some k between
// the operations known applied before the probe and those possibly
// started by its end. Any torn batch, half-installed seal, or
// delta/segment double-count produces a tuple matching no version.
// Afterwards the same operation log replays serially into a fresh
// table and both images must serialize byte-identically.

// oraSummary is the exact state fingerprint probed by readers:
// count/sum/min/max over the live rows of the int64 column.
type oraSummary struct {
	count, sum, min, max int64
}

// oraOp is one recorded writer operation, replayable serially.
type oraOp struct {
	kind byte // 'a' append, 'u' update, 's' string update, 'd' delete
	id   int
	val  int64
	str  string
	rows []int64
	strs []string
}

// oraApply applies one operation to a table; mutations are atomic with
// respect to concurrent readers.
func oraApply(tb *Table, op oraOp) error {
	switch op.kind {
	case 'a':
		b := tb.NewBatch()
		if err := Append(b, "a", op.rows); err != nil {
			return err
		}
		if err := b.AppendStrings("s", op.strs); err != nil {
			return err
		}
		return b.Commit()
	case 'u':
		return Update(tb, "a", op.id, op.val)
	case 's':
		return tb.UpdateString("s", op.id, op.str)
	default:
		return tb.Delete(op.id)
	}
}

// oraMirror is the writer's serial model of the table.
type oraMirror struct {
	vals    []int64
	deleted []bool
}

func (m *oraMirror) apply(op oraOp) {
	switch op.kind {
	case 'a':
		m.vals = append(m.vals, op.rows...)
		m.deleted = append(m.deleted, make([]bool, len(op.rows))...)
	case 'u':
		m.vals[op.id] = op.val
	case 'd':
		m.deleted[op.id] = true
	}
}

func (m *oraMirror) summary() oraSummary {
	var s oraSummary
	first := true
	for i, v := range m.vals {
		if m.deleted[i] {
			continue
		}
		s.count++
		s.sum += v
		if first || v < s.min {
			s.min = v
		}
		if first || v > s.max {
			s.max = v
		}
		first = false
	}
	return s
}

func oraGen(rng *rand.Rand, total int) oraOp {
	switch r := rng.IntN(100); {
	case r < 50:
		n := 16 + rng.IntN(48)
		rows := make([]int64, n)
		strs := make([]string, n)
		for i := range rows {
			rows[i] = rng.Int64N(1_000_000)
			strs[i] = oraCities[rng.IntN(len(oraCities))]
		}
		return oraOp{kind: 'a', rows: rows, strs: strs}
	case r < 70:
		return oraOp{kind: 'u', id: rng.IntN(total), val: rng.Int64N(1_000_000)}
	case r < 80:
		return oraOp{kind: 's', id: rng.IntN(total), str: oraCities[rng.IntN(len(oraCities))]}
	default:
		return oraOp{kind: 'd', id: rng.IntN(total)}
	}
}

func mkLSMOracleTable(t *testing.T, vals []int64, strs []string, ingest bool) *Table {
	t.Helper()
	tb := NewWithOptions("oracle", TableOptions{SegmentRows: 128})
	if err := AddColumn(tb, "a", vals, Imprints, core.Options{Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("s", strs, Imprints, core.Options{Seed: 12}); err != nil {
		t.Fatal(err)
	}
	if ingest {
		if err := tb.EnableDeltaIngest(IngestOptions{AutoSeal: true}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestDeltaSnapshotIsolationOracle(t *testing.T) {
	ops := 320
	if raceEnabled {
		ops = 120
	}
	for _, par := range []int{1, 2, 8} {
		par := par
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			const n0 = 1024
			rng := rand.New(rand.NewPCG(0x04ac1e, uint64(par)))
			vals := make([]int64, n0)
			strs := make([]string, n0)
			for i := range vals {
				vals[i] = rng.Int64N(1_000_000)
				strs[i] = oraCities[rng.IntN(len(oraCities))]
			}
			dt := mkLSMOracleTable(t, vals, strs, true)

			// versions[k] is the exact summary after k operations; it is
			// written before hiV publishes k, and readers only index
			// versions up to a published hiV, so the slots they read are
			// complete. applied publishes k only after the table mutation
			// finished, bounding a probe's version from below.
			mirror := &oraMirror{vals: append([]int64(nil), vals...), deleted: make([]bool, n0)}
			versions := make([]oraSummary, ops+1)
			versions[0] = mirror.summary()
			opLog := make([]oraOp, 0, ops)
			var hiV, applied atomic.Int64
			done := make(chan struct{})

			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer close(done)
				for k := 1; k <= ops; k++ {
					op := oraGen(rng, len(mirror.vals))
					mirror.apply(op)
					versions[k] = mirror.summary()
					opLog = append(opLog, op)
					hiV.Store(int64(k))
					if err := oraApply(dt, op); err != nil {
						t.Errorf("writer op %d: %v", k, err)
						return
					}
					applied.Store(int64(k))
				}
			}()

			const readers = 3
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					probes := 0
					for {
						select {
						case <-done:
							if probes >= 25 {
								return
							}
						default:
						}
						probes++
						lo := applied.Load()
						res, _, err := dt.Select().
							Options(SelectOptions{Parallelism: par}).
							Aggregate(CountAll(), Sum("a"), Min("a"), Max("a"))
						hi := hiV.Load()
						if err != nil {
							t.Errorf("reader %d: %v", r, err)
							return
						}
						got := oraSummary{
							count: res.At(0).Int,
							sum:   res.At(1).Int,
							min:   res.At(2).Int,
							max:   res.At(3).Int,
						}
						ok := false
						for v := lo; v <= hi; v++ {
							if versions[v] == got {
								ok = true
								break
							}
						}
						if !ok {
							t.Errorf("reader %d: snapshot %+v matches no version in [%d,%d] — torn read",
								r, got, lo, hi)
							return
						}
					}
				}(r)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			// Serial replay: the same operations against a plain columnar
			// table must land on the same final state, byte-identical
			// after both images fold their deletes.
			sr := mkLSMOracleTable(t, vals, strs, false)
			for k, op := range opLog {
				if err := oraApply(sr, op); err != nil {
					t.Fatalf("replay op %d: %v", k, err)
				}
			}
			if err := dt.Close(); err != nil {
				t.Fatal(err)
			}
			if g, w := dt.Compact(), sr.Compact(); g != w {
				t.Fatalf("Compact removed %d rows, serial replay %d", g, w)
			}
			var live, serial bytes.Buffer
			if err := dt.Write(&live); err != nil {
				t.Fatal(err)
			}
			if err := sr.Write(&serial); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(live.Bytes(), serial.Bytes()) {
				t.Fatalf("concurrent image (%d bytes) differs from serial replay (%d bytes)",
					live.Len(), serial.Len())
			}
		})
	}
}
