package table

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// preparedTestPred is the canonical parameterized tree used across the
// tests: a numeric range with one literal and one placeholder bound,
// conjoined with a string equality placeholder.
func preparedTestPred() Predicate {
	return And(
		RangeP("qty", Param[int64]("lo"), Param[int64]("hi")),
		EqualsP("city", StrParam("city")),
	)
}

func TestPreparedMatchesAdhoc(t *testing.T) {
	tb, qty, _, city, _ := mkMixedTable(t, 3000, 11)
	_ = qty
	p, err := tb.Prepare(preparedTestPred(), SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{city[0], city[len(city)/2], "nosuchcity"} {
		for _, span := range [][2]int64{{900, 1100}, {1010, 1015}, {0, 5000}} {
			got, _, err := p.Bind("lo", span[0]).Bind("hi", span[1]).Bind("city", c).IDs()
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := tb.Select().Where(And(
				Range[int64]("qty", span[0], span[1]),
				StrEquals("city", c),
			)).IDs()
			if err != nil {
				t.Fatal(err)
			}
			equalIDs(t, got, want, "prepared vs adhoc")
		}
	}
}

func TestPreparedValidation(t *testing.T) {
	tb, _, _, _, _ := mkMixedTable(t, 500, 3)

	// Unknown column.
	if _, err := tb.Prepare(AtLeastP("nope", Param[int64]("x")), (SelectOptions{})); err == nil {
		t.Error("unknown column accepted at Prepare")
	}
	// Declared parameter type vs column type, caught before any Bind.
	if _, err := tb.Prepare(AtLeastP("qty", Param[int32]("x")), SelectOptions{}); err == nil {
		t.Error("int32 parameter on int64 column accepted")
	}
	if _, err := tb.Prepare(EqualsP("qty", StrParam("x")), SelectOptions{}); err == nil {
		t.Error("string parameter on numeric column accepted")
	}
	// Same name with conflicting types.
	if _, err := tb.Prepare(And(
		AtLeastP("qty", Param[int64]("x")),
		EqualsP("city", StrParam("x")),
	), SelectOptions{}); err == nil {
		t.Error("conflicting parameter types accepted")
	}
	// Literal Val bounds type-check at Prepare too.
	if _, err := tb.Prepare(AtLeastP("qty", Val(int32(5))), SelectOptions{}); err == nil {
		t.Error("int32 literal bound on int64 column accepted")
	}
	// InP wants a placeholder, not a literal.
	if _, err := tb.Prepare(InP("qty", Val(int64(5))), SelectOptions{}); err == nil {
		t.Error("literal InP bound accepted")
	}
	// A parameterized prefix leaf on a numeric column fails at Prepare,
	// not at first execution — even when the placeholder's declared
	// type matches the column, so only the kind is wrong.
	if _, err := tb.Prepare(PrefixP("qty", Param[int64]("p")), SelectOptions{}); err == nil {
		t.Error("parameterized prefix on numeric column accepted at Prepare")
	}
	// Zero Bound and empty parameter name.
	if _, err := tb.Prepare(AtLeastP("qty", Bound{}), SelectOptions{}); err == nil {
		t.Error("zero Bound accepted")
	}
	if _, err := tb.Prepare(AtLeastP("qty", Param[int64]("")), SelectOptions{}); err == nil {
		t.Error("empty parameter name accepted")
	}

	p, err := tb.Prepare(preparedTestPred(), SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Params(); len(got) != 3 || got[0] != "city" || got[1] != "hi" || got[2] != "lo" {
		t.Errorf("Params() = %v", got)
	}
	// Unknown name, wrong value type, unbound execution.
	if _, _, err := p.Bind("nope", int64(1)).IDs(); err == nil || !strings.Contains(err.Error(), "$nope") {
		t.Errorf("unknown parameter bind: %v", err)
	}
	if _, _, err := p.Bind("lo", int32(1)).IDs(); err == nil || !strings.Contains(err.Error(), "int64") {
		t.Errorf("wrong bind type: %v", err)
	}
	if _, _, err := p.Bind("lo", int64(1)).Bind("hi", int64(2)).IDs(); err == nil || !strings.Contains(err.Error(), "$city") {
		t.Errorf("unbound parameter: %v", err)
	}
	// Where on a prepared execution is rejected.
	if _, _, err := p.Bind("lo", int64(1)).Where(AtLeast[int64]("qty", 0)).IDs(); err == nil {
		t.Error("Where on prepared execution accepted")
	}
	// Bind on an unprepared query is rejected.
	if _, _, err := tb.Select().Bind("lo", int64(1)).IDs(); err == nil {
		t.Error("Bind on unprepared query accepted")
	}
}

func TestPreparedInP(t *testing.T) {
	tb, _, _, city, tag := mkMixedTable(t, 2000, 9)
	p, err := tb.Prepare(And(
		InP("city", StrParam("cities")),
		InP("qty", Param[int64]("qtys")),
	), SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = tag
	cities := []string{city[10], city[500]}
	qtys := []int64{990, 1000, 1010, 1020}
	got, _, err := p.Bind("cities", cities).Bind("qtys", qtys).IDs()
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := tb.Select().Where(And(
		StrIn("city", cities...),
		In("qty", qtys...),
	)).IDs()
	if err != nil {
		t.Fatal(err)
	}
	equalIDs(t, got, want, "prepared IN")

	// Rebinding an empty list selects nothing.
	n, _, err := p.Bind("cities", []string{}).Bind("qtys", qtys).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("empty IN-list counted %d rows", n)
	}
}

// TestPreparedTranslationCounts pins the compile-once contract: static
// leaves are translated at Prepare and never again; parameterized
// leaves exactly once per execution; a storage shape change recompiles
// the statics once.
func TestPreparedTranslationCounts(t *testing.T) {
	tb, _, _, city, _ := mkMixedTable(t, 1500, 21)
	pred := And(
		RangeP("qty", Param[int64]("lo"), Param[int64]("hi")), // 1 param leaf
		StrEquals("city", city[0]),                            // static leaf
		LessThan[float64]("price", 90),                        // static leaf
	)

	base := compileLeafCalls.Load()
	p, err := tb.Prepare(pred, SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := compileLeafCalls.Load() - base; got != 2 {
		t.Errorf("Prepare translated %d leaves, want 2 (the static ones)", got)
	}

	base = compileLeafCalls.Load()
	if _, _, err := p.Bind("lo", int64(900)).Bind("hi", int64(1100)).IDs(); err != nil {
		t.Fatal(err)
	}
	if got := compileLeafCalls.Load() - base; got != 1 {
		t.Errorf("execution translated %d leaves, want 1 (the parameterized one)", got)
	}

	// Rebinding re-translates only the parameterized leaf again.
	base = compileLeafCalls.Load()
	if _, _, err := p.Bind("lo", int64(0)).Bind("hi", int64(5000)).Count(); err != nil {
		t.Fatal(err)
	}
	if got := compileLeafCalls.Load() - base; got != 1 {
		t.Errorf("re-bound execution translated %d leaves, want 1", got)
	}

	// A batch append only extends the active tail segment: static
	// leaves stay compiled (segment-granular tracking — sealed segments
	// and their cached translations are untouched), so the next
	// execution still translates only its own param leaf.
	b := tb.NewBatch()
	if err := Append(b, "qty", []int64{1000}); err != nil {
		t.Fatal(err)
	}
	if err := Append(b, "price", []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendStrings("city", []string{city[0]}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendStrings("tag", []string{"new"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	base = compileLeafCalls.Load()
	if _, _, err := p.Bind("lo", int64(900)).Bind("hi", int64(1100)).IDs(); err != nil {
		t.Fatal(err)
	}
	if got := compileLeafCalls.Load() - base; got != 1 {
		t.Errorf("post-append execution translated %d leaves, want 1 (the param leaf; statics survive appends)", got)
	}
	// ... and stays that way on the next execution.
	base = compileLeafCalls.Load()
	if _, _, err := p.Bind("lo", int64(900)).Bind("hi", int64(1100)).IDs(); err != nil {
		t.Fatal(err)
	}
	if got := compileLeafCalls.Load() - base; got != 1 {
		t.Errorf("steady-state execution translated %d leaves, want 1", got)
	}
}

// TestAdhocTranslationCount pins the satellite refactor on the ad-hoc
// path too: one execution translates each leaf exactly once (the old
// leafCheck/estimate/leafRuns triple translated each leaf three times).
func TestAdhocTranslationCount(t *testing.T) {
	tb, _, _, _, _ := mkMixedTable(t, 1000, 5)
	pred := And(
		Range[int64]("qty", 900, 1100),
		LessThan[float64]("price", 50),
		StrPrefix("city", "a"),
	)
	base := compileLeafCalls.Load()
	if _, _, err := tb.Select().Where(pred).IDs(); err != nil {
		t.Fatal(err)
	}
	if got := compileLeafCalls.Load() - base; got != 3 {
		t.Errorf("ad-hoc execution translated %d leaves, want 3 (once each)", got)
	}
}

func TestPreparedExplain(t *testing.T) {
	tb, _, _, city, _ := mkMixedTable(t, 2000, 13)
	p, err := tb.Prepare(preparedTestPred(), SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Bind("lo", int64(950)).Bind("hi", int64(1050)).Bind("city", city[0]).Explain()
	if err != nil {
		t.Fatal(err)
	}
	text := plan.String()
	for _, want := range []string{"$lo=950", "$hi=1050", `$city="` + city[0] + `"`} {
		if !strings.Contains(text, want) {
			t.Errorf("bound-parameter plan missing %q:\n%s", want, text)
		}
	}
	// Unbound Explain reports the missing parameters rather than a plan.
	if _, err := p.Exec().Explain(); err == nil {
		t.Error("Explain with unbound parameters succeeded")
	}
}

func TestPreparedSelectAndLimit(t *testing.T) {
	tb, _, _, city, _ := mkMixedTable(t, 1200, 17)
	p, err := tb.Prepare(EqualsP("city", StrParam("c")), SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.Select("qty", "city")
	var rows int
	for _, row := range p.Bind("c", city[0]).Limit(3).Rows() {
		if got := row.Columns(); len(got) != 2 || got[0] != "qty" || got[1] != "city" {
			t.Errorf("projection = %v", got)
		}
		rows++
	}
	if rows != 3 {
		t.Errorf("limited prepared execution yielded %d rows, want 3", rows)
	}
}

func TestPreparedNilPredicate(t *testing.T) {
	tb, _, _, _ := mkTable(t, 300, 2)
	p, err := tb.Prepare(nil, SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n, _, err := p.Exec().Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 300 {
		t.Errorf("nil-predicate prepared count = %d, want 300", n)
	}
}

// TestPreparedConcurrentExecutions races many executions (with distinct
// bindings) against batch appends, exercising the generation-recompile
// path under -race.
func TestPreparedConcurrentExecutions(t *testing.T) {
	tb, _, _, city, _ := mkMixedTable(t, 2000, 23)
	p, err := tb.Prepare(preparedTestPred(), SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				lo := int64(900 + g*10 + i)
				ids, _, err := p.Bind("lo", lo).Bind("hi", lo+100).Bind("city", city[g*7]).IDs()
				if err != nil {
					t.Error(err)
					return
				}
				_ = ids
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			b := tb.NewBatch()
			if err := Append(b, "qty", []int64{1000}); err != nil {
				t.Error(err)
				return
			}
			if err := Append(b, "price", []float64{5}); err != nil {
				t.Error(err)
				return
			}
			if err := b.AppendStrings("city", []string{city[0]}); err != nil {
				t.Error(err)
				return
			}
			if err := b.AppendStrings("tag", []string{"new"}); err != nil {
				t.Error(err)
				return
			}
			if err := b.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestCountFastPathWithDeletes pins the wholesale-count satellite: an
// exact-run count stays correct while deletes are pending, takes the
// popcount shortcut, and surfaces it in both QueryStats and Explain.
func TestCountFastPathWithDeletes(t *testing.T) {
	tb, qty, _, _ := mkTable(t, 4000, 31)
	lo, hi := qty[0]-100000, qty[0]+100000 // everything: exact span runs
	q := func() *Query {
		return tb.Select().Where(Range[int64]("qty", lo, hi)).
			Options(SelectOptions{ScanThreshold: 2}) // always probe
	}
	n0, st0, err := q().Count()
	if err != nil {
		t.Fatal(err)
	}
	if n0 != 4000 {
		t.Fatalf("pre-delete count = %d, want 4000", n0)
	}
	if st0.FastCountedRows == 0 {
		t.Error("no rows counted via the fast path on an exact span")
	}
	for _, id := range []int{0, 1, 63, 64, 100, 3999} {
		if err := tb.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	n1, st1, err := q().Count()
	if err != nil {
		t.Fatal(err)
	}
	if n1 != 4000-6 {
		t.Errorf("post-delete count = %d, want %d", n1, 4000-6)
	}
	// Most blocks are exact (a few straddle histogram-bin borders and
	// stay inexact); the wholesale tally must cover them while staying
	// dead-on about the deleted bits inside.
	if st1.FastCountedRows == 0 || st1.FastCountedRows > n1 {
		t.Errorf("FastCountedRows = %d, want in (0, %d]", st1.FastCountedRows, n1)
	}
	if st1.FastCountedRows < n1/2 {
		t.Errorf("FastCountedRows = %d covers under half of %d rows", st1.FastCountedRows, n1)
	}
	// Cross-check against the per-row path.
	ids, _, err := q().IDs()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(ids)) != n1 {
		t.Errorf("Count = %d but IDs = %d", n1, len(ids))
	}
	// Explain previews exactly the coverage Count then takes.
	plan, err := q().Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.FastCountRows != st1.FastCountedRows {
		t.Errorf("Plan.FastCountRows = %d, Count took %d", plan.FastCountRows, st1.FastCountedRows)
	}
	if !strings.Contains(plan.String(), "count fast path") {
		t.Errorf("plan text missing count fast path:\n%s", plan)
	}
}

// TestLeafErrorsSurface pins the bugfix satellite: a type-mismatched
// leaf surfaces exactly one error from its single translation instead
// of being silently masked into a probe.
func TestLeafErrorsSurface(t *testing.T) {
	tb, _, _, _ := mkTable(t, 200, 4)
	for _, tc := range []struct {
		name string
		pred Predicate
	}{
		{"wrong range type", Range[int32]("qty", 0, 1)},
		{"wrong in-list type", In[int32]("qty", 1, 2)},
		{"prefix on numeric", StrPrefix("qty", "a")},
		{"string equals on numeric", StrEquals("qty", "a")},
	} {
		if _, _, err := tb.Select().Where(tc.pred).IDs(); err == nil {
			t.Errorf("%s: error not surfaced", tc.name)
		}
		if _, _, err := tb.Select().Where(tc.pred).Count(); err == nil {
			t.Errorf("%s: Count error not surfaced", tc.name)
		}
		if _, err := tb.Select().Where(tc.pred).Explain(); err == nil {
			t.Errorf("%s: Explain error not surfaced", tc.name)
		}
	}
}

func BenchmarkAdhocCount(b *testing.B) {
	tb := benchTable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64(900 + i%100)
		pred := And(
			Range[int64]("qty", lo, lo+120),
			StrEquals("city", cities[i%len(cities)]),
		)
		if _, _, err := tb.Select().Where(pred).Count(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreparedCount(b *testing.B) {
	tb := benchTable(b)
	p, err := tb.Prepare(preparedTestPred(), SelectOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64(900 + i%100)
		if _, _, err := p.Bind("lo", lo).Bind("hi", lo+120).
			Bind("city", cities[i%len(cities)]).Count(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTable(b *testing.B) *Table {
	b.Helper()
	n := 100_000
	qty := make([]int64, n)
	price := make([]float64, n)
	city := make([]string, n)
	v := int64(1000)
	for i := 0; i < n; i++ {
		v += int64(i%21) - 10
		qty[i] = v
		price[i] = float64(i%1000) / 10
		city[i] = cities[(i/97)%len(cities)]
	}
	tb := New("bench")
	if err := AddColumn(tb, "qty", qty, Imprints, core.Options{Seed: 1}); err != nil {
		b.Fatal(err)
	}
	if err := AddColumn(tb, "price", price, Imprints, core.Options{Seed: 2}); err != nil {
		b.Fatal(err)
	}
	if err := tb.AddStringColumn("city", city, Imprints, core.Options{Seed: 3}); err != nil {
		b.Fatal(err)
	}
	return tb
}
