package table

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// model computes the expected per-block candidacy/exactness from a
// per-cacheline picture.
func blockModel(runs []core.CandidateRun, f, totalCl int) map[uint32]bool {
	type cls struct {
		covered int
		exact   bool
		seen    bool
	}
	blocks := map[uint32]*cls{}
	for _, r := range runs {
		for i := uint32(0); i < r.Count; i++ {
			cl := r.Start + i
			b := cl / uint32(f)
			st, ok := blocks[b]
			if !ok {
				st = &cls{exact: true}
				blocks[b] = st
			}
			st.seen = true
			st.covered++
			if !r.Exact {
				st.exact = false
			}
		}
	}
	out := map[uint32]bool{}
	for b, st := range blocks {
		if !st.seen {
			continue
		}
		blockLen := totalCl - int(b)*f
		if blockLen > f {
			blockLen = f
		}
		out[b] = st.exact && st.covered == blockLen
	}
	return out
}

func TestBlocksFromCachelinesBasic(t *testing.T) {
	// f=4, 10 cachelines -> blocks of 4,4,2.
	runs := []core.CandidateRun{
		{Start: 0, Count: 4, Exact: true},  // block 0 fully exact
		{Start: 5, Count: 2, Exact: true},  // block 1 partially covered
		{Start: 8, Count: 2, Exact: false}, // block 2 (short) fully covered, inexact
	}
	got := blocksFromCachelines(runs, 4, 10)
	// Blocks 1 and 2 are both inexact candidates and adjacent, so they
	// merge into one run.
	want := []core.CandidateRun{
		{Start: 0, Count: 1, Exact: true},
		{Start: 1, Count: 2, Exact: false},
	}
	if len(got) != len(want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	}
}

func TestBlocksFromCachelinesShortFinalBlockExact(t *testing.T) {
	// The final block has only 2 existing cachelines; covering both
	// exactly makes the block exact.
	runs := []core.CandidateRun{{Start: 8, Count: 2, Exact: true}}
	got := blocksFromCachelines(runs, 4, 10)
	if len(got) != 1 || got[0] != (core.CandidateRun{Start: 2, Count: 1, Exact: true}) {
		t.Fatalf("got %+v", got)
	}
}

func TestBlocksFromCachelinesLongRunFastPath(t *testing.T) {
	// One run across many whole blocks must become one output run.
	runs := []core.CandidateRun{{Start: 3, Count: 1000, Exact: true}}
	got := blocksFromCachelines(runs, 8, 2000)
	// Head block 0 partial (cl 3..7), middle blocks 1..125 whole,
	// tail block 125: cl 1000..1002 -> 1003/8 = 125 r3.
	if len(got) != 3 {
		t.Fatalf("got %d runs: %+v", len(got), got)
	}
	if got[0].Exact || got[0].Start != 0 {
		t.Errorf("head block: %+v", got[0])
	}
	if !got[1].Exact || got[1].Start != 1 || got[1].Count != 124 {
		t.Errorf("middle blocks: %+v", got[1])
	}
	if got[2].Exact || got[2].Start != 125 {
		t.Errorf("tail block: %+v", got[2])
	}
}

func TestBlocksIdentityWhenFIsOne(t *testing.T) {
	runs := []core.CandidateRun{{Start: 2, Count: 3, Exact: true}}
	got := blocksFromCachelines(runs, 1, 100)
	if len(got) != 1 || got[0] != runs[0] {
		t.Fatalf("f=1 should be identity: %+v", got)
	}
}

// Property: blocksFromCachelines agrees with the per-cacheline model for
// random well-formed run lists and factors.
func TestQuickBlocksModel(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xb10c))
		factor := []int{1, 2, 4, 8}[rng.IntN(4)]
		totalCl := 1 + rng.IntN(200)
		// Build sorted disjoint runs within [0, totalCl).
		var runs []core.CandidateRun
		cl := 0
		for cl < totalCl {
			cl += rng.IntN(3)
			if cl >= totalCl {
				break
			}
			cnt := 1 + rng.IntN(10)
			if cl+cnt > totalCl {
				cnt = totalCl - cl
			}
			exact := rng.IntN(2) == 0
			if n := len(runs); n > 0 && int(runs[n-1].Start+runs[n-1].Count) == cl && runs[n-1].Exact == exact {
				runs[n-1].Count += uint32(cnt)
			} else {
				runs = append(runs, core.CandidateRun{Start: uint32(cl), Count: uint32(cnt), Exact: exact})
			}
			cl += cnt
		}
		got := blocksFromCachelines(runs, factor, totalCl)
		model := blockModel(runs, factor, totalCl)
		seen := map[uint32]bool{}
		for i, r := range got {
			if r.Count == 0 {
				return false
			}
			if i > 0 && r.Start < got[i-1].Start+got[i-1].Count {
				return false // overlap
			}
			for j := uint32(0); j < r.Count; j++ {
				b := r.Start + j
				wantExact, ok := model[b]
				if !ok || wantExact != r.Exact {
					return false
				}
				seen[b] = true
			}
		}
		return len(seen) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
