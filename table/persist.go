package table

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"reflect"

	"repro/internal/colfile"
	"repro/internal/coltype"
	"repro/internal/column"
	"repro/internal/core"
)

// Persistence format (little endian):
//
//	magic "CTBL", version uint16
//	nameLen uint16, name bytes
//	rows uint64, ncols uint16
//	per column:
//	  nameLen uint16, name bytes
//	  kind uint8 (reflect.Kind), mode uint8 (IndexMode)
//	  build options: sampleSize uint32, seed uint64, countDup uint8,
//	                 valuesPerCacheline uint32, maxBins uint32
//	  numeric kinds:
//	    column payload (colfile format, self-delimiting)
//	  string kind (reflect.String):
//	    nsymbols uint32, per symbol: len uint32 + bytes
//	    code payload (colfile int32 format, self-delimiting)
//	  hasIndex uint8; if 1: index image (core serialization, self-delimiting)
//
// Deleted-row marks are not persisted: Compact before Write (Write
// refuses otherwise, keeping load semantics unambiguous).

const (
	tableMagic   = "CTBL"
	tableVersion = 2
)

// ErrCorrupt reports an invalid persisted table.
var ErrCorrupt = errors.New("table: corrupt persisted table")

// Write persists the table: column payloads plus index images.
// Tables with pending deletes must be compacted first.
func (t *Table) Write(w io.Writer) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.ndel > 0 {
		return fmt.Errorf("table %s: compact before persisting (%d deleted rows pending)", t.name, t.ndel)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(tableMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(tableVersion)); err != nil {
		return err
	}
	if err := writeString(bw, t.name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(t.rows)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(t.order))); err != nil {
		return err
	}
	for _, name := range t.order {
		if err := t.cols[name].persist(bw); err != nil {
			return fmt.Errorf("table %s, column %s: %w", t.name, name, err)
		}
	}
	return bw.Flush()
}

func writeString(w io.Writer, s string) error {
	if len(s) > 1<<16-1 {
		return fmt.Errorf("name too long")
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// writeOptions persists a column's build options so indexes rebuilt
// after loading (re-encode, Maintain, compact) keep their configured
// sampling and binning.
func writeOptions(w io.Writer, o core.Options) error {
	dup := uint8(0)
	if o.CountDuplicates {
		dup = 1
	}
	for _, v := range []any{
		uint32(o.SampleSize), o.Seed, dup,
		uint32(o.ValuesPerCacheline), uint32(o.MaxBins),
	} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readOptions(r io.Reader) (core.Options, error) {
	var sample, vpc, maxBins uint32
	var seed uint64
	var dup uint8
	for _, v := range []any{&sample, &seed, &dup, &vpc, &maxBins} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return core.Options{}, err
		}
	}
	return core.Options{
		SampleSize:         int(sample),
		Seed:               seed,
		CountDuplicates:    dup == 1,
		ValuesPerCacheline: int(vpc),
		MaxBins:            int(maxBins),
	}, nil
}

// writeIndexImage writes the hasIndex flag and, when present, the index
// image itself.
func writeIndexImage[V coltype.Value](w io.Writer, ix *core.Index[V]) error {
	hasIx := byte(0)
	if ix != nil {
		hasIx = 1
	}
	if _, err := w.Write([]byte{hasIx}); err != nil {
		return err
	}
	if ix != nil {
		return ix.Write(w)
	}
	return nil
}

// persist is part of anyColumn (implemented on colState).
func (c *colState[V]) persist(w io.Writer) error {
	if err := writeString(w, c.name); err != nil {
		return err
	}
	var kind [2]byte
	var zero V
	kind[0] = uint8(reflect.TypeOf(zero).Kind())
	kind[1] = uint8(c.mode)
	if _, err := w.Write(kind[:]); err != nil {
		return err
	}
	if err := writeOptions(w, c.vpcOpts); err != nil {
		return err
	}
	if err := colfile.Write(w, c.vals); err != nil {
		return err
	}
	return writeIndexImage(w, c.ix)
}

// persist for string columns: dictionary symbols, then the code column,
// then the code imprint image.
func (c *strColState) persist(w io.Writer) error {
	if err := writeString(w, c.name); err != nil {
		return err
	}
	kind := [2]byte{uint8(reflect.String), uint8(c.mode)}
	if _, err := w.Write(kind[:]); err != nil {
		return err
	}
	if err := writeOptions(w, c.vpcOpts); err != nil {
		return err
	}
	card := c.dict.Cardinality()
	if err := binary.Write(w, binary.LittleEndian, uint32(card)); err != nil {
		return err
	}
	for code := 0; code < card; code++ {
		sym := c.dict.Symbol(int32(code))
		if err := binary.Write(w, binary.LittleEndian, uint32(len(sym))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, sym); err != nil {
			return err
		}
	}
	if err := colfile.Write(w, c.codes()); err != nil {
		return err
	}
	return writeIndexImage(w, c.ix)
}

// Read loads a table persisted with Write.
func Read(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if string(magic) != tableMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if version != tableVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version)
	}
	name, err := readString(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var rows uint64
	if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var ncols uint16
	if err := binary.Read(br, binary.LittleEndian, &ncols); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	t := New(name)
	for i := 0; i < int(ncols); i++ {
		if err := readColumn(t, br, rows); err != nil {
			return nil, err
		}
	}
	if t.rows != int(rows) {
		return nil, fmt.Errorf("%w: header says %d rows, columns carry %d", ErrCorrupt, rows, t.rows)
	}
	return t, nil
}

func readColumn(t *Table, r io.Reader, rows uint64) error {
	name, err := readString(r)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var kindMode [2]byte
	if _, err := io.ReadFull(r, kindMode[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	mode := IndexMode(kindMode[1])
	if mode != Imprints && mode != NoIndex && mode != Zonemap {
		return fmt.Errorf("%w: column %s has invalid index mode %d", ErrCorrupt, name, mode)
	}
	opts, err := readOptions(r)
	if err != nil {
		return fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
	}
	if err := validateOptions(opts); err != nil {
		return fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
	}
	switch reflect.Kind(kindMode[0]) {
	case reflect.Int8:
		return loadColumn[int8](t, name, mode, opts, r)
	case reflect.Int16:
		return loadColumn[int16](t, name, mode, opts, r)
	case reflect.Int32:
		return loadColumn[int32](t, name, mode, opts, r)
	case reflect.Int64:
		return loadColumn[int64](t, name, mode, opts, r)
	case reflect.Uint8:
		return loadColumn[uint8](t, name, mode, opts, r)
	case reflect.Uint16:
		return loadColumn[uint16](t, name, mode, opts, r)
	case reflect.Uint32:
		return loadColumn[uint32](t, name, mode, opts, r)
	case reflect.Uint64:
		return loadColumn[uint64](t, name, mode, opts, r)
	case reflect.Float32:
		return loadColumn[float32](t, name, mode, opts, r)
	case reflect.Float64:
		return loadColumn[float64](t, name, mode, opts, r)
	case reflect.String:
		return loadStringColumn(t, name, mode, opts, r, rows)
	}
	return fmt.Errorf("%w: column %s has unsupported kind %d", ErrCorrupt, name, kindMode[0])
}

// installLoadedColumn validates and registers a deserialized column.
func installLoadedColumn(t *Table, name string, c anyColumn, nvals int) error {
	if _, dup := t.cols[name]; dup {
		return fmt.Errorf("%w: duplicate column %s", ErrCorrupt, name)
	}
	if len(t.order) > 0 && nvals != t.rows {
		return fmt.Errorf("%w: column %s has %d rows, table has %d", ErrCorrupt, name, nvals, t.rows)
	}
	t.installColumn(name, c, nvals)
	return nil
}

// readIndexImage reads the hasIndex flag and, when set, deserializes
// the index image reattached to vals. Only Imprints columns ever
// persist an image: Write emits none for NoIndex/Zonemap modes, and a
// loaded one would go unmaintained by appends, so a flagged image on
// any other mode is corruption.
func readIndexImage[V coltype.Value](r io.Reader, name string, mode IndexMode, vals []V) (*core.Index[V], error) {
	var hasIx [1]byte
	if _, err := io.ReadFull(r, hasIx[:]); err != nil {
		return nil, fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
	}
	if hasIx[0] != 1 {
		return nil, nil
	}
	if mode != Imprints {
		return nil, fmt.Errorf("%w: column %s has an index image but mode %d", ErrCorrupt, name, mode)
	}
	ix, err := core.ReadIndex[V](r, vals)
	if err != nil {
		return nil, fmt.Errorf("column %s: %w", name, err)
	}
	return ix, nil
}

func loadColumn[V coltype.Value](t *Table, name string, mode IndexMode, opts core.Options, r io.Reader) error {
	vals, err := colfile.Read[V](r)
	if err != nil {
		return fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
	}
	cs := &colState[V]{name: name, vals: vals, mode: mode, vpcOpts: opts}
	ix, err := readIndexImage(r, name, mode, vals)
	if err != nil {
		return err
	}
	if ix != nil {
		cs.ix = ix
	} else {
		// Persisted without an image (zonemap mode, or empty at save
		// time): rebuild whatever index the mode calls for.
		cs.rebuild()
	}
	return installLoadedColumn(t, name, cs, len(vals))
}

func loadStringColumn(t *Table, name string, mode IndexMode, opts core.Options, r io.Reader, rows uint64) error {
	if mode == Zonemap {
		return fmt.Errorf("%w: string column %s has zonemap mode", ErrCorrupt, name)
	}
	var card uint32
	if err := binary.Read(r, binary.LittleEndian, &card); err != nil {
		return fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
	}
	// Every symbol appears in at least one row, so cardinality beyond
	// the header row count is corruption — reject before looping.
	if uint64(card) > rows {
		return fmt.Errorf("%w: column %s has %d symbols but table has %d rows", ErrCorrupt, name, card, rows)
	}
	var symbols []string
	for i := uint32(0); i < card; i++ {
		var slen uint32
		if err := binary.Read(r, binary.LittleEndian, &slen); err != nil {
			return fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
		}
		if slen > 1<<30 {
			return fmt.Errorf("%w: column %s: symbol of %d bytes", ErrCorrupt, name, slen)
		}
		b := make([]byte, slen)
		if _, err := io.ReadFull(r, b); err != nil {
			return fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
		}
		symbols = append(symbols, string(b))
	}
	codes, err := colfile.Read[int32](r)
	if err != nil {
		return fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
	}
	dict, err := column.Reconstruct(name, codes, symbols)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	cs := &strColState{name: name, dict: dict, mode: mode, vpcOpts: opts}
	ix, err := readIndexImage(r, name, mode, codes)
	if err != nil {
		return err
	}
	if ix != nil {
		cs.ix = ix
	} else {
		cs.rebuild()
	}
	return installLoadedColumn(t, name, cs, len(codes))
}
