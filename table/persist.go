package table

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"reflect"

	"repro/internal/colfile"
	"repro/internal/coltype"
	"repro/internal/column"
	"repro/internal/core"
)

// Persistence format: tables are written in the checksummed sectioned
// layouts — version 5 (unsharded) and version 6 (sharded envelope) —
// described in persistcrc.go. The legacy uncheckummed layouts are
// still loaded:
//
//	version 3 (little endian):
//	  magic "CTBL", version uint16 (3)
//	  nameLen uint16, name bytes
//	  rows uint64, segmentRows uint32, ncols uint16
//	  per column:
//	    nameLen uint16, name bytes
//	    kind uint8 (reflect.Kind), mode uint8 (IndexMode)
//	    build options: sampleSize uint32, seed uint64, countDup uint8,
//	                   valuesPerCacheline uint32, maxBins uint32
//	    nsegs uint32
//	    per segment:
//	      numeric kinds:
//	        segment payload (colfile format, self-delimiting)
//	      string kind (reflect.String):
//	        nsymbols uint32, per symbol: len uint32 + bytes
//	        code payload (colfile int32 format, self-delimiting)
//	      hasIndex uint8; if 1: index image (core serialization, self-delimiting)
//
// Version 2 files — one monolithic payload and one index image per
// column — are still loaded: the values are read whole, re-chunked into
// segments of the loading table's default segment size, and the
// per-segment indexes rebuilt (the monolithic image no longer matches
// any storage unit, so it is read and discarded). Version 4 is the
// unchecksummed sharded envelope of per-shard v3 images.
//
// Deleted-row marks are not persisted: Compact before Write (Write
// refuses otherwise, keeping load semantics unambiguous).

const (
	tableMagic   = "CTBL"
	tableVersion = 3 // legacy unsharded layout, read-only
	// shardVersion is the legacy sharded-envelope format, read-only:
	// after the shared magic/version, name + segmentRows uint32 +
	// nshards uint16, then per shard a uint64 byte length followed by
	// that shard's complete, pure-v3 table image (magic and all).
	shardVersion = 4
)

// ErrCorrupt reports an invalid persisted table.
var ErrCorrupt = errors.New("table: corrupt persisted table")

// Write persists the table: checksummed sections carrying per-segment
// column payloads plus index images (v5, or a v6 envelope when
// sharded). Tables with pending deletes must be compacted first. With
// delta ingest enabled, buffered delta rows are folded into columnar
// storage first (under the exclusive lock, so no committed row races
// past the image) and, with a WAL attached, the log is cut under the
// same lock so the image carries its own checkpoint watermark.
func (t *Table) Write(w io.Writer) error {
	if t.shard != nil {
		return t.writeSharded(w)
	}
	if t.deltaPtr() != nil {
		t.mu.Lock()
		defer t.mu.Unlock()
		t.flushAllLocked()
		if err := t.walCutLocked(); err != nil {
			return err
		}
		return t.writeLocked(w)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.writeLocked(w)
}

//imprintvet:locks held=mu.R
func (t *Table) writeLocked(w io.Writer) error {
	if t.ndel > 0 {
		return fmt.Errorf("table %s: compact before persisting (%d deleted rows pending)", t.name, t.ndel)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(tableMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(tableVersionCRC)); err != nil {
		return err
	}
	if err := writeSection(bw, func(buf *bytes.Buffer) error {
		if err := writeString(buf, t.name); err != nil {
			return err
		}
		for _, v := range []any{
			uint64(t.rows), uint32(t.segRows), uint16(len(t.order)), t.walKeepSeqLocked(),
		} {
			if err := binary.Write(buf, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	for _, name := range t.order {
		if err := t.cols[name].persistCRC(bw); err != nil {
			return fmt.Errorf("table %s, column %s: %w", t.name, name, err)
		}
	}
	return bw.Flush()
}

// writeSharded persists a sharded table as a v6 envelope of per-shard
// v5 images. Commits are quiesced via the tokens; each kid's Write
// drains its own delta (and cuts its own WAL) under its own lock, so
// the envelope embeds fully drained images across all shards.
func (t *Table) writeSharded(w io.Writer) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.shard.lockTokens()
	defer t.shard.unlockTokens()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(tableMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(shardVersionCRC)); err != nil {
		return err
	}
	if err := t.writeShardedV6(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// readSharded loads the v4 envelope's per-shard images into a sharded
// table; the caller consumed magic and version.
func readSharded(br io.Reader, ctx *loadCtx) (*Table, error) {
	name, err := readString(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var sr uint32
	if err := binary.Read(br, binary.LittleEndian, &sr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var nshards uint16
	if err := binary.Read(br, binary.LittleEndian, &nshards); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if nshards < 2 {
		return nil, fmt.Errorf("%w: sharded envelope with %d shards", ErrCorrupt, nshards)
	}
	t := NewWithOptions(name, TableOptions{SegmentRows: int(sr), Shards: int(nshards)})
	if t.segRows != int(sr) {
		return nil, fmt.Errorf("%w: segment size %d is not a whole number of blocks", ErrCorrupt, sr)
	}
	sh := t.shard
	for c := 0; c < int(nshards); c++ {
		var n uint64
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("%w: shard %d: %v", ErrCorrupt, c, err)
		}
		ctx.shard = c
		kid, err := readInternal(io.LimitReader(br, int64(n)), ctx)
		ctx.shard = -1
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", c, err)
		}
		if kid.shard != nil {
			return nil, fmt.Errorf("%w: shard %d is itself sharded", ErrCorrupt, c)
		}
		if kid.name != name || kid.segRows != t.segRows {
			return nil, fmt.Errorf("%w: shard %d image (table %q, %d rows/segment) does not match envelope (%q, %d)",
				ErrCorrupt, c, kid.name, kid.segRows, name, t.segRows)
		}
		if c == 0 {
			t.order = append([]string(nil), kid.order...)
		} else if len(kid.order) != len(t.order) {
			return nil, fmt.Errorf("%w: shard %d carries %d columns, shard 0 carries %d",
				ErrCorrupt, c, len(kid.order), len(t.order))
		} else {
			for i, col := range kid.order {
				if col != t.order[i] {
					return nil, fmt.Errorf("%w: shard %d column %d is %q, shard 0 has %q",
						ErrCorrupt, c, i, col, t.order[i])
				}
			}
		}
		sh.kids[c] = kid
	}
	// The table is still being constructed and has not escaped to any
	// other goroutine, so the commit tokens cannot be contended yet.
	//imprintvet:allow locksafe freshly constructed table, not yet shared
	sh.refreshRowsLocked()
	return t, nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > 1<<16-1 {
		return fmt.Errorf("name too long")
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// writeOptions persists a column's build options so indexes rebuilt
// after loading (re-encode, Maintain, compact) keep their configured
// sampling and binning.
func writeOptions(w io.Writer, o core.Options) error {
	dup := uint8(0)
	if o.CountDuplicates {
		dup = 1
	}
	for _, v := range []any{
		uint32(o.SampleSize), o.Seed, dup,
		uint32(o.ValuesPerCacheline), uint32(o.MaxBins),
	} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readOptions(r io.Reader) (core.Options, error) {
	var sample, vpc, maxBins uint32
	var seed uint64
	var dup uint8
	for _, v := range []any{&sample, &seed, &dup, &vpc, &maxBins} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return core.Options{}, err
		}
	}
	return core.Options{
		SampleSize:         int(sample),
		Seed:               seed,
		CountDuplicates:    dup == 1,
		ValuesPerCacheline: int(vpc),
		MaxBins:            int(maxBins),
	}, nil
}

// writeIndexImage writes the hasIndex flag and, when present, the index
// image itself.
func writeIndexImage[V coltype.Value](w io.Writer, ix *core.Index[V]) error {
	hasIx := byte(0)
	if ix != nil {
		hasIx = 1
	}
	if _, err := w.Write([]byte{hasIx}); err != nil {
		return err
	}
	if ix != nil {
		return ix.Write(w)
	}
	return nil
}

// persistHeader writes the shared column preamble: name, kind, mode,
// options, segment count.
func persistHeader(w io.Writer, name string, kind reflect.Kind, mode IndexMode, opts core.Options, nsegs int) error {
	if err := writeString(w, name); err != nil {
		return err
	}
	kb := [2]byte{uint8(kind), uint8(mode)}
	if _, err := w.Write(kb[:]); err != nil {
		return err
	}
	if err := writeOptions(w, opts); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, uint32(nsegs))
}

// Read loads a table persisted with Write: the current checksummed
// formats (versions 5 and 6) or the legacy layouts (versions 2-4).
// Corruption is fatal; use ReadWithOptions to quarantine instead.
func Read(r io.Reader) (*Table, error) {
	return readInternal(r, &loadCtx{shard: -1})
}

// readInternal parses magic and version and dispatches to the
// version's loader, threading the load policy through.
func readInternal(r io.Reader, ctx *loadCtx) (*Table, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if string(magic) != tableMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	switch version {
	case tableVersionCRC:
		return readV5(br, ctx)
	case shardVersionCRC:
		return readShardedV6(br, ctx)
	case shardVersion:
		return readSharded(br, ctx)
	}
	if version != 2 && version != tableVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version)
	}
	name, err := readString(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var rows uint64
	if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	segRows := 0 // v2 carries none; NewWithOptions applies the default
	if version >= 3 {
		var sr uint32
		if err := binary.Read(br, binary.LittleEndian, &sr); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		segRows = int(sr)
	}
	var ncols uint16
	if err := binary.Read(br, binary.LittleEndian, &ncols); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	t := NewWithOptions(name, TableOptions{SegmentRows: segRows})
	for i := 0; i < int(ncols); i++ {
		if err := readColumn(t, br, rows, int(version)); err != nil {
			return nil, err
		}
	}
	if t.rows != int(rows) {
		return nil, fmt.Errorf("%w: header says %d rows, columns carry %d", ErrCorrupt, rows, t.rows)
	}
	return t, nil
}

func readColumn(t *Table, r io.Reader, rows uint64, version int) error {
	name, err := readString(r)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var kindMode [2]byte
	if _, err := io.ReadFull(r, kindMode[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	mode := IndexMode(kindMode[1])
	if mode != Imprints && mode != NoIndex && mode != Zonemap {
		return fmt.Errorf("%w: column %s has invalid index mode %d", ErrCorrupt, name, mode)
	}
	opts, err := readOptions(r)
	if err != nil {
		return fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
	}
	if err := validateOptions(opts); err != nil {
		return fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
	}
	nsegs := 1
	if version >= 3 {
		var ns uint32
		if err := binary.Read(r, binary.LittleEndian, &ns); err != nil {
			return fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
		}
		// Segment counts beyond what the header row count can fill are
		// corruption — reject before looping.
		if maxSegs := (rows + uint64(t.segRows) - 1) / uint64(t.segRows); uint64(ns) > maxSegs {
			return fmt.Errorf("%w: column %s has %d segments but table fits %d", ErrCorrupt, name, ns, maxSegs)
		}
		nsegs = int(ns)
	}
	switch reflect.Kind(kindMode[0]) {
	case reflect.Int8:
		return loadColumn[int8](t, name, mode, opts, r, nsegs, version)
	case reflect.Int16:
		return loadColumn[int16](t, name, mode, opts, r, nsegs, version)
	case reflect.Int32:
		return loadColumn[int32](t, name, mode, opts, r, nsegs, version)
	case reflect.Int64:
		return loadColumn[int64](t, name, mode, opts, r, nsegs, version)
	case reflect.Uint8:
		return loadColumn[uint8](t, name, mode, opts, r, nsegs, version)
	case reflect.Uint16:
		return loadColumn[uint16](t, name, mode, opts, r, nsegs, version)
	case reflect.Uint32:
		return loadColumn[uint32](t, name, mode, opts, r, nsegs, version)
	case reflect.Uint64:
		return loadColumn[uint64](t, name, mode, opts, r, nsegs, version)
	case reflect.Float32:
		return loadColumn[float32](t, name, mode, opts, r, nsegs, version)
	case reflect.Float64:
		return loadColumn[float64](t, name, mode, opts, r, nsegs, version)
	case reflect.String:
		return loadStringColumn(t, name, mode, opts, r, rows, nsegs, version)
	}
	return fmt.Errorf("%w: column %s has unsupported kind %d", ErrCorrupt, name, kindMode[0])
}

// installLoadedColumn validates and registers a deserialized column.
func installLoadedColumn(t *Table, name string, c anyColumn, nvals int) error {
	if _, dup := t.cols[name]; dup {
		return fmt.Errorf("%w: duplicate column %s", ErrCorrupt, name)
	}
	if len(t.order) > 0 && nvals != t.rows {
		return fmt.Errorf("%w: column %s has %d rows, table has %d", ErrCorrupt, name, nvals, t.rows)
	}
	//imprintvet:allow locksafe loading into a freshly constructed table, not yet shared
	t.installColumn(name, c, nvals)
	return nil
}

// readIndexImage reads the hasIndex flag and, when set, deserializes
// the index image reattached to vals. Only Imprints columns ever
// persist an image: Write emits none for NoIndex/Zonemap modes, and a
// loaded one would go unmaintained by appends, so a flagged image on
// any other mode is corruption.
func readIndexImage[V coltype.Value](r io.Reader, name string, mode IndexMode, vals []V) (*core.Index[V], error) {
	var hasIx [1]byte
	if _, err := io.ReadFull(r, hasIx[:]); err != nil {
		return nil, fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
	}
	if hasIx[0] != 1 {
		return nil, nil
	}
	if mode != Imprints {
		return nil, fmt.Errorf("%w: column %s has an index image but mode %d", ErrCorrupt, name, mode)
	}
	ix, err := core.ReadIndex[V](r, vals)
	if err != nil {
		return nil, fmt.Errorf("column %s: %w", name, err)
	}
	return ix, nil
}

// loadNumSegment reads one numeric segment: payload plus index image.
// The returned segment has its summary computed but its index only when
// an image was present — the caller rebuilds otherwise.
func loadNumSegment[V coltype.Value](t *Table, name string, mode IndexMode, r io.Reader) (*segment[V], error) {
	vals, err := colfile.Read[V](r)
	if err != nil {
		return nil, fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
	}
	ix, err := readIndexImage(r, name, mode, vals)
	if err != nil {
		return nil, err
	}
	s := &segment[V]{vals: vals, ix: ix}
	s.min, s.max, _ = summarize(vals)
	return s, nil
}

func loadColumn[V coltype.Value](t *Table, name string, mode IndexMode, opts core.Options, r io.Reader, nsegs, version int) error {
	cs := &colState[V]{name: name, mode: mode, vpcOpts: opts, segRows: t.segRows}
	if version == 2 {
		// Legacy monolithic layout: whole payload, then one index image
		// (discarded — it covers the un-chunked column). Re-chunk into
		// segments, rebuilding per-segment indexes.
		vals, err := colfile.Read[V](r)
		if err != nil {
			return fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
		}
		if _, err := readIndexImage(r, name, mode, vals); err != nil {
			return err
		}
		//imprintvet:allow locksafe loading into a freshly constructed column, not yet shared
		cs.absorb(vals)
		return installLoadedColumn(t, name, cs, len(vals))
	}
	n := 0
	for i := 0; i < nsegs; i++ {
		s, err := loadNumSegment[V](t, name, mode, r)
		if err != nil {
			return err
		}
		if err := checkSegmentFill(t, name, i, nsegs, len(s.vals)); err != nil {
			return err
		}
		if s.ix == nil {
			// Persisted without an image (zonemap/scan mode, or empty at
			// save time): rebuild whatever index the mode calls for.
			s.rebuild(mode, opts)
		}
		//imprintvet:allow snapshotsafe loading into a freshly constructed column, not yet shared
		cs.segs = append(cs.segs, s)
		n += len(s.vals)
	}
	return installLoadedColumn(t, name, cs, n)
}

// checkSegmentFill enforces the storage invariant id mapping relies on:
// every segment but the last holds exactly segRows rows, and the tail
// is non-empty. A file violating it would load fine but panic on the
// first point read — reject it as corrupt instead.
func checkSegmentFill(t *Table, name string, i, nsegs, rows int) error {
	if rows > t.segRows {
		return fmt.Errorf("%w: column %s: segment %d has %d rows, exceeds segment size %d",
			ErrCorrupt, name, i, rows, t.segRows)
	}
	if i < nsegs-1 && rows != t.segRows {
		return fmt.Errorf("%w: column %s: sealed segment %d has %d rows, want %d",
			ErrCorrupt, name, i, rows, t.segRows)
	}
	if i == nsegs-1 && rows == 0 {
		return fmt.Errorf("%w: column %s: empty tail segment", ErrCorrupt, name)
	}
	return nil
}

// readDict reads one persisted dictionary: symbol table plus codes.
func readDict(r io.Reader, name string, maxRows uint64) (*column.StringDict, error) {
	var card uint32
	if err := binary.Read(r, binary.LittleEndian, &card); err != nil {
		return nil, fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
	}
	// Every symbol appears in at least one row, so cardinality beyond
	// the covered row count is corruption — reject before looping.
	if uint64(card) > maxRows {
		return nil, fmt.Errorf("%w: column %s has %d symbols but at most %d rows", ErrCorrupt, name, card, maxRows)
	}
	var symbols []string
	for i := uint32(0); i < card; i++ {
		var slen uint32
		if err := binary.Read(r, binary.LittleEndian, &slen); err != nil {
			return nil, fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
		}
		if slen > 1<<30 {
			return nil, fmt.Errorf("%w: column %s: symbol of %d bytes", ErrCorrupt, name, slen)
		}
		b := make([]byte, slen)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
		}
		symbols = append(symbols, string(b))
	}
	codes, err := colfile.Read[int32](r)
	if err != nil {
		return nil, fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
	}
	dict, err := column.Reconstruct(name, codes, symbols)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return dict, nil
}

func loadStringColumn(t *Table, name string, mode IndexMode, opts core.Options, r io.Reader, rows uint64, nsegs, version int) error {
	if mode == Zonemap {
		return fmt.Errorf("%w: string column %s has zonemap mode", ErrCorrupt, name)
	}
	cs := &strColState{name: name, mode: mode, vpcOpts: opts, segRows: t.segRows}
	if version == 2 {
		// Legacy monolithic layout: one dictionary over the whole
		// column, then one code imprint image (discarded). Decode and
		// re-chunk into per-segment dictionaries.
		dict, err := readDict(r, name, rows)
		if err != nil {
			return err
		}
		if _, err := readIndexImage(r, name, mode, dict.Codes().Values()); err != nil {
			return err
		}
		codes := dict.Codes().Values()
		vals := make([]string, len(codes))
		for i, code := range codes {
			vals[i] = dict.Symbol(code)
		}
		//imprintvet:allow locksafe loading into a freshly constructed column, not yet shared
		cs.absorbStrings(vals)
		return installLoadedColumn(t, name, cs, len(vals))
	}
	n := 0
	for i := 0; i < nsegs; i++ {
		dict, err := readDict(r, name, min(rows, uint64(t.segRows)))
		if err != nil {
			return err
		}
		if err := checkSegmentFill(t, name, i, nsegs, dict.Codes().Len()); err != nil {
			return err
		}
		ix, err := readIndexImage(r, name, mode, dict.Codes().Values())
		if err != nil {
			return err
		}
		s := &strSegment{dict: dict, ix: ix, gen: cs.nextGen()}
		if ix == nil {
			cs.rebuildSegmentIndex(s)
		}
		//imprintvet:allow snapshotsafe loading into a freshly constructed column, not yet shared
		cs.segs = append(cs.segs, s)
		n += s.rows()
	}
	return installLoadedColumn(t, name, cs, n)
}
