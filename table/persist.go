package table

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"reflect"

	"repro/internal/colfile"
	"repro/internal/coltype"
	"repro/internal/core"
)

// Persistence format (little endian):
//
//	magic "CTBL", version uint16
//	nameLen uint16, name bytes
//	rows uint64, ncols uint16
//	per column:
//	  nameLen uint16, name bytes
//	  kind uint8 (reflect.Kind), mode uint8 (IndexMode)
//	  column payload (colfile format, self-delimiting)
//	  hasIndex uint8; if 1: index image (core serialization, self-delimiting)
//
// Deleted-row marks are not persisted: Compact before Write (Write
// refuses otherwise, keeping load semantics unambiguous).

const (
	tableMagic   = "CTBL"
	tableVersion = 1
)

// ErrCorrupt reports an invalid persisted table.
var ErrCorrupt = errors.New("table: corrupt persisted table")

// Write persists the table: column payloads plus index images.
// Tables with pending deletes must be compacted first.
func (t *Table) Write(w io.Writer) error {
	if t.ndel > 0 {
		return fmt.Errorf("table %s: compact before persisting (%d deleted rows pending)", t.name, t.ndel)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(tableMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(tableVersion)); err != nil {
		return err
	}
	if err := writeString(bw, t.name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(t.rows)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(t.order))); err != nil {
		return err
	}
	for _, name := range t.order {
		if err := t.cols[name].persist(bw); err != nil {
			return fmt.Errorf("table %s, column %s: %w", t.name, name, err)
		}
	}
	return bw.Flush()
}

func writeString(w io.Writer, s string) error {
	if len(s) > 1<<16-1 {
		return fmt.Errorf("name too long")
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// persist is part of anyColumn (implemented on colState).
func (c *colState[V]) persist(w io.Writer) error {
	if err := writeString(w, c.name); err != nil {
		return err
	}
	var kind [2]byte
	var zero V
	kind[0] = uint8(reflect.TypeOf(zero).Kind())
	kind[1] = uint8(c.mode)
	if _, err := w.Write(kind[:]); err != nil {
		return err
	}
	if err := colfile.Write(w, c.vals); err != nil {
		return err
	}
	hasIx := byte(0)
	if c.ix != nil {
		hasIx = 1
	}
	if _, err := w.Write([]byte{hasIx}); err != nil {
		return err
	}
	if c.ix != nil {
		return c.ix.Write(w)
	}
	return nil
}

// Read loads a table persisted with Write.
func Read(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if string(magic) != tableMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if version != tableVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version)
	}
	name, err := readString(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var rows uint64
	if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var ncols uint16
	if err := binary.Read(br, binary.LittleEndian, &ncols); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	t := New(name)
	for i := 0; i < int(ncols); i++ {
		if err := readColumn(t, br); err != nil {
			return nil, err
		}
	}
	if t.rows != int(rows) {
		return nil, fmt.Errorf("%w: header says %d rows, columns carry %d", ErrCorrupt, rows, t.rows)
	}
	return t, nil
}

func readColumn(t *Table, r io.Reader) error {
	name, err := readString(r)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var kindMode [2]byte
	if _, err := io.ReadFull(r, kindMode[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	mode := IndexMode(kindMode[1])
	if mode != Imprints && mode != NoIndex && mode != Zonemap {
		return fmt.Errorf("%w: column %s has invalid index mode %d", ErrCorrupt, name, mode)
	}
	switch reflect.Kind(kindMode[0]) {
	case reflect.Int8:
		return loadColumn[int8](t, name, mode, r)
	case reflect.Int16:
		return loadColumn[int16](t, name, mode, r)
	case reflect.Int32:
		return loadColumn[int32](t, name, mode, r)
	case reflect.Int64:
		return loadColumn[int64](t, name, mode, r)
	case reflect.Uint8:
		return loadColumn[uint8](t, name, mode, r)
	case reflect.Uint16:
		return loadColumn[uint16](t, name, mode, r)
	case reflect.Uint32:
		return loadColumn[uint32](t, name, mode, r)
	case reflect.Uint64:
		return loadColumn[uint64](t, name, mode, r)
	case reflect.Float32:
		return loadColumn[float32](t, name, mode, r)
	case reflect.Float64:
		return loadColumn[float64](t, name, mode, r)
	}
	return fmt.Errorf("%w: column %s has unsupported kind %d", ErrCorrupt, name, kindMode[0])
}

func loadColumn[V coltype.Value](t *Table, name string, mode IndexMode, r io.Reader) error {
	vals, err := colfile.Read[V](r)
	if err != nil {
		return fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
	}
	var hasIx [1]byte
	if _, err := io.ReadFull(r, hasIx[:]); err != nil {
		return fmt.Errorf("%w: column %s: %v", ErrCorrupt, name, err)
	}
	cs := &colState[V]{name: name, vals: vals, mode: mode}
	if hasIx[0] == 1 {
		ix, err := core.ReadIndex[V](r, vals)
		if err != nil {
			return fmt.Errorf("column %s: %w", name, err)
		}
		cs.ix = ix
	} else {
		// Persisted without an image (zonemap mode, or empty at save
		// time): rebuild whatever index the mode calls for.
		cs.rebuild()
	}
	if _, dup := t.cols[name]; dup {
		return fmt.Errorf("%w: duplicate column %s", ErrCorrupt, name)
	}
	if len(t.order) > 0 && len(vals) != t.rows {
		return fmt.Errorf("%w: column %s has %d rows, table has %d", ErrCorrupt, name, len(vals), t.rows)
	}
	t.cols[name] = cs
	t.order = append(t.order, name)
	if len(t.order) == 1 {
		t.rows = len(vals)
	}
	return nil
}
