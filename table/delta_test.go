package table

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// oraCities is the categorical domain shared by the delta tests.
var oraCities = []string{
	"amsterdam", "athens", "berlin", "bern", "lisbon",
	"madrid", "oslo", "paris", "prague", "rome",
}

// mkDeltaPair builds the equivalence twins: dt holds the first `base`
// rows columnar and the remaining `extra` rows buffered in the delta
// store (ingest enabled, no background sealer so tests stage the
// transitions explicitly); twin holds all base+extra rows fully
// columnar. Every query must answer identically on both. qty is a
// shuffled permutation of 0..n-1, so ordering comparisons are tie-free.
func mkDeltaPair(t *testing.T, base, extra int) (dt, twin *Table, qty []int64, city []string) {
	t.Helper()
	n := base + extra
	rng := rand.New(rand.NewPCG(0xde17a, 0x5eed))
	qty = make([]int64, n)
	price := make([]float64, n)
	city = make([]string, n)
	for i, p := range rng.Perm(n) {
		qty[i] = int64(p)
		price[i] = rng.Float64() * 1000
		city[i] = oraCities[rng.IntN(len(oraCities))]
	}
	mk := func(rows int) *Table {
		tb := NewWithOptions("orders", TableOptions{SegmentRows: 256})
		if err := AddColumn(tb, "qty", qty[:rows], Imprints, core.Options{Seed: 1}); err != nil {
			t.Fatal(err)
		}
		if err := AddColumn(tb, "price", price[:rows], Imprints, core.Options{Seed: 2}); err != nil {
			t.Fatal(err)
		}
		if err := tb.AddStringColumn("city", city[:rows], Imprints, core.Options{Seed: 3}); err != nil {
			t.Fatal(err)
		}
		return tb
	}
	twin = mk(n)
	dt = mk(base)
	if err := dt.EnableDeltaIngest(IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	for off := base; off < n; off += 97 {
		end := off + 97
		if end > n {
			end = n
		}
		b := dt.NewBatch()
		if err := Append(b, "qty", qty[off:end]); err != nil {
			t.Fatal(err)
		}
		if err := Append(b, "price", price[off:end]); err != nil {
			t.Fatal(err)
		}
		if err := b.AppendStrings("city", city[off:end]); err != nil {
			t.Fatal(err)
		}
		if err := b.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	return dt, twin, qty, city
}

// assertEquivalent runs every executor over both tables at parallelism
// 1, 2 and 8 and fails on any divergence. Aggregates stick to exact
// domains (integer sums, float min/max) so twin-vs-delta comparisons
// are bit-exact regardless of segmentation.
func assertEquivalent(t *testing.T, dt, twin *Table, ctx string) {
	t.Helper()
	if g, w := dt.Rows(), twin.Rows(); g != w {
		t.Fatalf("%s: Rows = %d, want %d", ctx, g, w)
	}
	if g, w := dt.LiveRows(), twin.LiveRows(); g != w {
		t.Fatalf("%s: LiveRows = %d, want %d", ctx, g, w)
	}
	preds := []struct {
		name string
		p    Predicate
	}{
		{"all", nil},
		{"band", Range[int64]("qty", 200, 700)},
		{"and", And(Range[int64]("qty", 100, 1200), StrPrefix("city", "b"))},
		{"or", Or(StrEquals("city", "lisbon"), LessThan[float64]("price", 120))},
		{"andnot", AndNot(AtLeast[int64]("qty", 50), StrIn("city", "rome", "oslo"))},
	}
	specs := []AggSpec{
		CountAll(), Sum("qty"), Min("qty"), Max("qty"), Avg("qty"),
		Min("price"), Max("price"), Min("city"), Max("city"),
	}
	for _, par := range []int{1, 2, 8} {
		opts := SelectOptions{Parallelism: par}
		for _, pc := range preds {
			label := fmt.Sprintf("%s/p%d/%s", ctx, par, pc.name)
			mk := func(tb *Table) *Query {
				q := tb.Select("qty", "city").Options(opts)
				if pc.p != nil {
					q = q.Where(pc.p)
				}
				return q
			}
			gc, _, err := mk(dt).Count()
			if err != nil {
				t.Fatalf("%s: delta Count: %v", label, err)
			}
			wc, _, err := mk(twin).Count()
			if err != nil {
				t.Fatalf("%s: twin Count: %v", label, err)
			}
			if gc != wc {
				t.Fatalf("%s: Count = %d, want %d", label, gc, wc)
			}
			gids, _, err := mk(dt).IDs()
			if err != nil {
				t.Fatalf("%s: delta IDs: %v", label, err)
			}
			wids, _, err := mk(twin).IDs()
			if err != nil {
				t.Fatalf("%s: twin IDs: %v", label, err)
			}
			equalIDs(t, gids, wids, label)

			var got, want []string
			qd := mk(dt)
			for id, row := range qd.Rows() {
				got = append(got, fmt.Sprintf("%d %s", id, row))
			}
			qt := mk(twin)
			for id, row := range qt.Rows() {
				want = append(want, fmt.Sprintf("%d %s", id, row))
			}
			if qd.Err() != nil || qt.Err() != nil {
				t.Fatalf("%s: Rows: %v / %v", label, qd.Err(), qt.Err())
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: Rows diverge:\n got %v\nwant %v", label, got, want)
			}

			ga, _, err := mk(dt).Aggregate(specs...)
			if err != nil {
				t.Fatalf("%s: delta Aggregate: %v", label, err)
			}
			wa, _, err := mk(twin).Aggregate(specs...)
			if err != nil {
				t.Fatalf("%s: twin Aggregate: %v", label, err)
			}
			if !reflect.DeepEqual(ga.Values(), wa.Values()) {
				t.Fatalf("%s: Aggregate diverges:\n got %v\nwant %v", label, ga, wa)
			}

			gg, _, err := mk(dt).GroupBy("city").Aggregate(CountAll(), Sum("qty"))
			if err != nil {
				t.Fatalf("%s: delta GroupBy: %v", label, err)
			}
			wg, _, err := mk(twin).GroupBy("city").Aggregate(CountAll(), Sum("qty"))
			if err != nil {
				t.Fatalf("%s: twin GroupBy: %v", label, err)
			}
			if !reflect.DeepEqual(gg.Groups, wg.Groups) {
				t.Fatalf("%s: GroupBy diverges:\n got %v\nwant %v", label, gg.Groups, wg.Groups)
			}

			for _, ord := range []OrderSpec{Asc("qty"), Desc("qty")} {
				oids, _, err := mk(dt).OrderBy(ord).Limit(9).IDs()
				if err != nil {
					t.Fatalf("%s: delta OrderBy: %v", label, err)
				}
				tids, _, err := mk(twin).OrderBy(ord).Limit(9).IDs()
				if err != nil {
					t.Fatalf("%s: twin OrderBy: %v", label, err)
				}
				equalIDs(t, oids, tids, label+"/orderby")
			}
		}
	}
}

// TestDeltaEquivalenceStates walks the write path through its states —
// buffered, mutated in place, partially sealed, fully flushed,
// compacted — asserting after each that every executor at every
// parallelism level answers exactly like a fully-columnar twin.
func TestDeltaEquivalenceStates(t *testing.T) {
	const base, extra = 1000, 700
	dt, twin, _, _ := mkDeltaPair(t, base, extra)
	n := base + extra
	if got := dt.DeltaRows(); got != extra {
		t.Fatalf("DeltaRows = %d, want %d", got, extra)
	}
	assertEquivalent(t, dt, twin, "buffered")

	// Identical mutations on both: updates and deletes touching sealed
	// rows and buffered rows alike (replacement qty values stay unique
	// so ordering comparisons remain tie-free).
	mutate := func(tb *Table) {
		if err := Update(tb, "qty", 37, int64(n)); err != nil {
			t.Fatal(err)
		}
		if err := Update(tb, "qty", n-3, int64(n+1)); err != nil {
			t.Fatal(err)
		}
		if err := tb.UpdateString("city", 40, "utrecht"); err != nil {
			t.Fatal(err)
		}
		if err := tb.UpdateString("city", base+5, "zagreb"); err != nil {
			t.Fatal(err)
		}
		if err := tb.Delete(5); err != nil {
			t.Fatal(err)
		}
		if err := tb.Delete(base + 10); err != nil {
			t.Fatal(err)
		}
	}
	mutate(dt)
	mutate(twin)
	if !dt.IsDeleted(base+10) || !twin.IsDeleted(base+10) {
		t.Fatal("delete of a buffered row not visible")
	}
	assertEquivalent(t, dt, twin, "mutated")

	if sealed := dt.SealDelta(); sealed == 0 {
		t.Fatal("SealDelta sealed nothing")
	}
	if got := dt.DeltaRows(); got == 0 || got >= dt.SegmentRows() {
		t.Fatalf("after SealDelta: %d delta rows, want a partial remainder", got)
	}
	assertEquivalent(t, dt, twin, "sealed")

	// A second round of mutations against the now-smaller buffered
	// remainder, then a full flush.
	mutate2 := func(tb *Table) {
		if err := Update(tb, "qty", n-2, int64(n+2)); err != nil {
			t.Fatal(err)
		}
		if err := tb.Delete(n - 5); err != nil {
			t.Fatal(err)
		}
	}
	mutate2(dt)
	mutate2(twin)
	if dt.FlushDelta() == 0 {
		t.Fatal("FlushDelta moved nothing")
	}
	if got := dt.DeltaRows(); got != 0 {
		t.Fatalf("after FlushDelta: %d delta rows, want 0", got)
	}
	assertEquivalent(t, dt, twin, "flushed")

	st := dt.IngestStats()
	switch {
	case !st.Enabled:
		t.Fatal("IngestStats.Enabled = false")
	case st.Seals == 0 || st.SealedRows == 0 || st.SealedSegments == 0:
		t.Fatalf("seal counters empty: %+v", st)
	case st.Flushes == 0 || st.FlushedRows == 0:
		t.Fatalf("flush counters empty: %+v", st)
	}

	gr := dt.Compact()
	wr := twin.Compact()
	if gr != wr || gr != 3 {
		t.Fatalf("Compact removed %d / %d rows, want 3", gr, wr)
	}
	assertEquivalent(t, dt, twin, "compacted")
}

// TestDeltaVisibility asserts the headline snapshot property: a
// committed batch is queryable immediately, before any seal.
func TestDeltaVisibility(t *testing.T) {
	dt, _, _, _ := mkDeltaPair(t, 300, 0)
	if err := dt.EnableDeltaIngest(IngestOptions{}); err == nil {
		t.Fatal("second EnableDeltaIngest did not fail")
	}
	b := dt.NewBatch()
	if err := Append(b, "qty", []int64{9_000_001}); err != nil {
		t.Fatal(err)
	}
	if err := Append(b, "price", []float64{12.5}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendStrings("city", []string{"nicosia"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := dt.Rows(); got != 301 {
		t.Fatalf("Rows = %d, want 301", got)
	}
	cnt, st, err := dt.Select().Where(Equals[int64]("qty", 9_000_001)).Count()
	if err != nil || cnt != 1 {
		t.Fatalf("Count over buffered row = %d (%v), want 1", cnt, err)
	}
	if st.DeltaRowsScanned == 0 {
		t.Fatal("QueryStats.DeltaRowsScanned = 0, want > 0")
	}
	row, err := dt.ReadRow(300)
	if err != nil || row["city"] != "nicosia" || row["qty"] != int64(9_000_001) {
		t.Fatalf("ReadRow(300) = %v (%v)", row, err)
	}

	// A batch missing a column must be rejected whole.
	b2 := dt.NewBatch()
	if err := Append(b2, "qty", []int64{1}); err != nil {
		t.Fatal(err)
	}
	if err := b2.Commit(); err == nil || !strings.Contains(err.Error(), "missing column") {
		t.Fatalf("partial batch commit error = %v", err)
	}
}

// TestDeltaSaveUnderIngest is the persistence satellite: Write on a
// table with a non-empty delta drains it first, and the round-tripped
// image answers exactly like the live table.
func TestDeltaSaveUnderIngest(t *testing.T) {
	dt, twin, _, _ := mkDeltaPair(t, 400, 300)
	var buf bytes.Buffer
	if err := dt.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if got := dt.DeltaRows(); got != 0 {
		t.Fatalf("after Write: %d delta rows, want 0 (drained)", got)
	}
	rt, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rt.IngestStats().Enabled {
		t.Fatal("re-read table reports delta ingest enabled")
	}
	assertEquivalent(t, rt, twin, "reread")
	gq, err := Column[int64](rt, "qty")
	if err != nil {
		t.Fatal(err)
	}
	wq, err := Column[int64](twin, "qty")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gq, wq) {
		t.Fatal("round-tripped qty column diverges")
	}
}

// TestDeltaExplain asserts plans surface the delta scan: TotalRows
// includes buffered rows, DeltaRows is set, and the rendering names it.
func TestDeltaExplain(t *testing.T) {
	dt, _, _, _ := mkDeltaPair(t, 300, 120)
	p, err := dt.Select().Where(Range[int64]("qty", 0, 420)).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if p.DeltaRows != 120 {
		t.Fatalf("Plan.DeltaRows = %d, want 120", p.DeltaRows)
	}
	if p.TotalRows != 420 {
		t.Fatalf("Plan.TotalRows = %d, want 420", p.TotalRows)
	}
	if s := p.String(); !strings.Contains(s, "delta: 120 rows") {
		t.Fatalf("Plan.String() missing delta clause: %q", s)
	}
}

// TestDeltaMaintainReport asserts Maintain reports write-path health.
func TestDeltaMaintainReport(t *testing.T) {
	dt, _, _, _ := mkDeltaPair(t, 300, 77)
	rep := dt.Maintain(MaintainOptions{})
	if rep.DeltaRows != 77 {
		t.Fatalf("MaintenanceReport.DeltaRows = %d, want 77", rep.DeltaRows)
	}
	if s := rep.String(); !strings.Contains(s, "delta row(s) buffered") {
		t.Fatalf("MaintenanceReport.String() = %q", s)
	}
}

// TestDeltaAddColumnFlushesFirst: layout changes drain the delta so the
// new column covers buffered rows too, and subsequent batches must
// carry the new column.
func TestDeltaAddColumnFlushesFirst(t *testing.T) {
	dt, _, _, _ := mkDeltaPair(t, 300, 50)
	bonus := make([]int64, 350)
	for i := range bonus {
		bonus[i] = int64(i % 7)
	}
	if err := AddColumn(dt, "bonus", bonus, NoIndex, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := dt.DeltaRows(); got != 0 {
		t.Fatalf("after AddColumn: %d delta rows, want 0", got)
	}
	b := dt.NewBatch()
	for _, err := range []error{
		Append(b, "qty", []int64{42}),
		Append(b, "price", []float64{1}),
		b.AppendStrings("city", []string{"turin"}),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Commit(); err == nil {
		t.Fatal("batch without the new column committed")
	}
	if err := Append(b, "bonus", []int64{99}); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	cnt, _, err := dt.Select().Where(Equals[int64]("bonus", 99)).Count()
	if err != nil || cnt != 1 {
		t.Fatalf("Count over new column = %d (%v), want 1", cnt, err)
	}
}

// TestDeltaPrepared runs a compiled statement over buffered rows.
func TestDeltaPrepared(t *testing.T) {
	dt, twin, _, _ := mkDeltaPair(t, 500, 230)
	pred := RangeP("qty", Param[int64]("lo"), Param[int64]("hi"))
	pd, err := dt.Prepare(pred, SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := twin.Prepare(pred, SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, band := range [][2]int64{{0, 100}, {300, 650}, {700, 730}} {
		gids, _, err := pd.Bind("lo", band[0]).Bind("hi", band[1]).IDs()
		if err != nil {
			t.Fatal(err)
		}
		wids, _, err := pt.Bind("lo", band[0]).Bind("hi", band[1]).IDs()
		if err != nil {
			t.Fatal(err)
		}
		equalIDs(t, gids, wids, fmt.Sprintf("prepared[%d,%d)", band[0], band[1]))
	}
}

// TestDeltaAutoSeal exercises the background sealer end to end: after
// enough commits the worker drains the delta below one segment without
// any manual call, and Close is idempotent.
func TestDeltaAutoSeal(t *testing.T) {
	tb := NewWithOptions("stream", TableOptions{SegmentRows: 128})
	seedVals := make([]int64, 128)
	for i := range seedVals {
		seedVals[i] = int64(i)
	}
	if err := AddColumn(tb, "a", seedVals, Imprints, core.Options{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if err := tb.EnableDeltaIngest(IngestOptions{AutoSeal: true}); err != nil {
		t.Fatal(err)
	}
	for off := 0; off < 10*128; off += 64 {
		vals := make([]int64, 64)
		for i := range vals {
			vals[i] = int64(off + i)
		}
		b := tb.NewBatch()
		if err := Append(b, "a", vals); err != nil {
			t.Fatal(err)
		}
		if err := b.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for tb.DeltaRows() >= 128 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := tb.DeltaRows(); got >= 128 {
		t.Fatalf("background sealer left %d delta rows (>= one segment)", got)
	}
	if st := tb.IngestStats(); st.Seals == 0 || st.SealedRows == 0 {
		t.Fatalf("no background seals recorded: %+v", st)
	}
	if got := tb.Rows(); got != 11*128 {
		t.Fatalf("Rows = %d, want %d", got, 11*128)
	}
	if err := tb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tb.Close(); err != nil {
		t.Fatal(err)
	}
}
