package table

import (
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestConcurrentReadersAndWriters exercises the north-star traffic
// model under the race detector: query readers (IDs, Count, streaming
// Rows with mid-stream breaks, ReadRow) run against batch-append,
// update, delete and maintenance writers. Results cannot be compared to
// a fixed oracle while writers run, so readers assert invariants: no
// error, ascending ids, values consistent with the predicate.
func TestConcurrentReadersAndWriters(t *testing.T) {
	const n = 8192
	rng := rand.New(rand.NewPCG(42, 43))
	qty := make([]int64, n)
	city := make([]string, n)
	v := int64(1000)
	for i := 0; i < n; i++ {
		v += int64(rng.IntN(21)) - 10
		qty[i] = v
		city[i] = cities[rng.IntN(len(cities))]
	}
	tb := New("traffic")
	if err := AddColumn(tb, "qty", qty, Imprints, core.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddStringColumn("city", city, Imprints, core.Options{Seed: 2}); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var readers, writers sync.WaitGroup

	// Readers: hammer the query surface until the writers finish.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed uint64) {
			defer readers.Done()
			rng := rand.New(rand.NewPCG(seed, 99))
			pred := And(AtLeast[int64]("qty", 900), StrPrefix("city", "P"))
			for {
				select {
				case <-done:
					return
				default:
				}
				switch rng.IntN(4) {
				case 0:
					ids, _, err := tb.Select().Where(pred).IDs()
					if err != nil {
						t.Errorf("reader IDs: %v", err)
						return
					}
					for i := 1; i < len(ids); i++ {
						if ids[i-1] >= ids[i] {
							t.Errorf("ids not ascending at %d", i)
							return
						}
					}
				case 1:
					if _, _, err := tb.Select().Where(pred).Count(); err != nil {
						t.Errorf("reader Count: %v", err)
						return
					}
				case 2:
					q := tb.Select("qty", "city").Where(pred).Limit(64)
					seen := 0
					for _, row := range q.Rows() {
						if qv, ok := row.Get("qty").(int64); !ok || qv < 900 {
							t.Errorf("row violates predicate: %v", row)
							return
						}
						seen++
						if seen == 16 {
							break // mid-stream break must release the lock
						}
					}
					if q.Err() != nil {
						t.Errorf("reader Rows: %v", q.Err())
						return
					}
				default:
					rows := tb.Rows()
					if rows == 0 {
						continue
					}
					// Rows may be compacted or deleted between the
					// bound read and the access; both errors are fine,
					// data races are what the detector is here for.
					_, _ = tb.ReadRow(rng.IntN(rows))
				}
			}
		}(uint64(r))
	}

	// Writer: batch appends.
	writers.Add(1)
	go func() {
		defer writers.Done()
		rng := rand.New(rand.NewPCG(7, 7))
		for round := 0; round < 30; round++ {
			b := tb.NewBatch()
			nq := make([]int64, 128)
			nc := make([]string, 128)
			for i := range nq {
				nq[i] = int64(900 + rng.IntN(300))
				nc[i] = cities[rng.IntN(len(cities))]
			}
			if err := Append(b, "qty", nq); err != nil {
				t.Errorf("append: %v", err)
				return
			}
			if err := b.AppendStrings("city", nc); err != nil {
				t.Errorf("append strings: %v", err)
				return
			}
			if err := b.Commit(); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
		}
	}()

	// Writer: point updates, numeric and string. A concurrent compact
	// may shrink the table between the bound read and the call, so
	// range errors are tolerated — the race detector is the assertion.
	writers.Add(1)
	go func() {
		defer writers.Done()
		rng := rand.New(rand.NewPCG(8, 8))
		for u := 0; u < 3000; u++ {
			rows := tb.Rows()
			if rows == 0 {
				continue
			}
			id := rng.IntN(rows)
			if u%3 == 0 {
				_ = tb.UpdateString("city", id, cities[rng.IntN(len(cities))])
			} else {
				_ = Update(tb, "qty", id, int64(900+rng.IntN(300)))
			}
		}
	}()

	// Writer: deletes plus maintenance that compacts and renumbers ids
	// under the readers — the riskiest writer, so the test asserts the
	// compaction really fired.
	var compactions int
	writers.Add(1)
	go func() {
		defer writers.Done()
		rng := rand.New(rand.NewPCG(9, 9))
		for d := 0; d < 1500; d++ {
			rows := tb.Rows()
			if rows > 0 {
				// The row may vanish in a concurrent compact; only data
				// races matter here.
				_ = tb.Delete(rng.IntN(rows))
			}
			if d%300 == 299 {
				if rep := tb.Maintain(MaintainOptions{DeletedFraction: 0.05}); rep.Compacted {
					compactions++
				}
			}
		}
	}()

	writers.Wait()
	close(done)
	readers.Wait()

	if compactions == 0 {
		t.Error("maintenance never compacted: reader-vs-compaction went unexercised")
	}

	// Final consistency: with writers quiesced, the query surface must
	// agree with a fresh scan of the live data.
	ids, _, err := tb.Select().Where(AtLeast[int64]("qty", 900)).IDs()
	if err != nil {
		t.Fatal(err)
	}
	liveQty, err := Column[int64](tb, "qty")
	if err != nil {
		t.Fatal(err)
	}
	var want []uint32
	for i, q := range liveQty {
		if !tb.IsDeleted(i) && q >= 900 {
			want = append(want, uint32(i))
		}
	}
	equalIDs(t, ids, want, "post-quiesce query")
}
