package table

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// shardTableEqual compares two tables row for row through the public
// surface (ids, both columns, deletion state).
func shardTableEqual(t *testing.T, tag string, a, b *Table) {
	t.Helper()
	aIDs, _, err := a.Select().IDs()
	if err != nil {
		t.Fatal(err)
	}
	bIDs, _, err := b.Select().IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(aIDs) != len(bIDs) {
		t.Fatalf("%s: %d ids vs %d", tag, len(aIDs), len(bIDs))
	}
	for i := range aIDs {
		if aIDs[i] != bIDs[i] {
			t.Fatalf("%s: ids[%d] = %d vs %d", tag, i, aIDs[i], bIDs[i])
		}
	}
	for _, id := range aIDs {
		ra, err := a.ReadRow(int(id))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.ReadRow(int(id))
		if err != nil {
			t.Fatal(err)
		}
		if ra["qty"] != rb["qty"] || ra["city"] != rb["city"] {
			t.Fatalf("%s: row %d %v vs %v", tag, id, ra, rb)
		}
	}
}

func TestShardPersistRoundTrip(t *testing.T) {
	for _, shards := range []int{2, 4} {
		tb := seedSharded(t, shards, 128, 700)
		if err := Update(tb, "qty", 42, int64(-1)); err != nil {
			t.Fatal(err)
		}
		if err := tb.Delete(600); err != nil {
			t.Fatal(err)
		}
		// Shard-local compaction leaves a hole in the global id space;
		// the envelope must carry it faithfully.
		if removed := tb.Compact(); removed != 1 {
			t.Fatalf("shards=%d: Compact removed %d", shards, removed)
		}
		var buf bytes.Buffer
		if err := tb.Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got.shard == nil || got.shard.nshards != shards {
			t.Fatalf("shards=%d: loaded table is not sharded (%v)", shards, got.shard)
		}
		if got.Rows() != tb.Rows() || got.LiveRows() != tb.LiveRows() {
			t.Fatalf("shards=%d: rows %d/%d vs %d/%d",
				shards, got.Rows(), got.LiveRows(), tb.Rows(), tb.LiveRows())
		}
		shardTableEqual(t, "round-trip", tb, got)
		// The image is deterministic: writing the loaded table again
		// reproduces it byte for byte.
		var again bytes.Buffer
		if err := got.Write(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatalf("shards=%d: rewrite differs (%d vs %d bytes)", shards, buf.Len(), again.Len())
		}
	}
}

// TestShardPersistV3Compat pins backward compatibility: an unsharded
// (v3) image loads unsharded, and its data reads back identically.
func TestShardPersistV3Compat(t *testing.T) {
	un := New("orders")
	if err := AddColumn(un, "qty", []int64{}, Imprints, core.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := un.AddStringColumn("city", []string{}, Imprints, core.Options{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	commitRows(t, un, 0, 300)
	var buf bytes.Buffer
	if err := un.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.shard != nil {
		t.Fatal("v3 image loaded sharded")
	}
	shardTableEqual(t, "v3-compat", un, got)
}

func TestShardPersistCorruptEnvelope(t *testing.T) {
	tb := seedSharded(t, 2, 128, 300)
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Truncations anywhere in the envelope must fail cleanly, never
	// panic or hand back a half-loaded table.
	for _, cut := range []int{0, len(raw) / 4, len(raw) / 2, len(raw) - 3} {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncated at %d accepted", cut)
		}
	}
}

// TestShardPersistSaveUnderIngest pins the drain: Write on a sharded
// ingesting table flushes every shard's buffered delta rows, the image
// contains them all, and the source table keeps serving afterwards.
func TestShardPersistSaveUnderIngest(t *testing.T) {
	tb := seedSharded(t, 4, 128, 0)
	if err := tb.EnableDeltaIngest(IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	commitRows(t, tb, 0, 500) // buffered across all four shards
	if tb.DeltaRows() == 0 {
		t.Fatal("setup: no buffered delta rows")
	}
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if tb.DeltaRows() != 0 {
		t.Fatalf("Write left %d buffered rows", tb.DeltaRows())
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 500 {
		t.Fatalf("image holds %d rows, want 500", got.Rows())
	}
	shardTableEqual(t, "save-under-ingest", tb, got)
	// The source keeps ingesting after the save.
	commitRows(t, tb, 500, 100)
	n, _, err := tb.Select().Count()
	if err != nil || n != 600 {
		t.Fatalf("post-save count = %d (%v)", n, err)
	}
}
