package imprints

import (
	"math/rand/v2"
	"testing"
)

func TestFacadeEvaluateOrAndNot(t *testing.T) {
	n := 3000
	rng := rand.New(rand.NewPCG(61, 61))
	a := make([]int64, n)
	b := make([]int64, n)
	for i := 0; i < n; i++ {
		a[i] = int64(rng.IntN(1000))
		b[i] = int64(rng.IntN(1000))
	}
	ixA := Build(a, Options{Seed: 1})
	ixB := Build(b, Options{Seed: 2})

	or, _ := EvaluateOr(nil,
		NewRangeConjunct(ixA, 100, 200),
		NewRangeConjunct(ixB, 800, 900),
	)
	var wantOr int
	for i := 0; i < n; i++ {
		if (a[i] >= 100 && a[i] < 200) || (b[i] >= 800 && b[i] < 900) {
			wantOr++
		}
	}
	if len(or) != wantOr {
		t.Errorf("EvaluateOr = %d, want %d", len(or), wantOr)
	}

	andNot, _ := EvaluateAndNot(nil,
		NewRangeConjunct(ixA, 0, 500),
		NewRangeConjunct(ixB, 0, 500),
	)
	var wantAN int
	for i := 0; i < n; i++ {
		if a[i] < 500 && !(b[i] < 500) {
			wantAN++
		}
	}
	if len(andNot) != wantAN {
		t.Errorf("EvaluateAndNot = %d, want %d", len(andNot), wantAN)
	}
}

func TestFacadeRunAlgebra(t *testing.T) {
	a := []CandidateRun{{Start: 0, Count: 10, Exact: true}}
	b := []CandidateRun{{Start: 5, Count: 10, Exact: false}}
	if got := IntersectRuns(a, b); len(got) != 1 || got[0].Count != 5 {
		t.Errorf("IntersectRuns = %+v", got)
	}
	if got := UnionRuns(a, b); TotalRunCachelines(got) != 15 {
		t.Errorf("UnionRuns covers %d", TotalRunCachelines(got))
	}
	if got := DiffRuns(a, b); TotalRunCachelines(got) != 10 {
		// b is inexact, so the overlap survives (as inexact candidates).
		t.Errorf("DiffRuns covers %d", TotalRunCachelines(got))
	}
}

func TestFacadeMultiRangeAndInSet(t *testing.T) {
	rng := rand.New(rand.NewPCG(62, 62))
	col := make([]int64, 4000)
	for i := range col {
		col[i] = int64(rng.IntN(100))
	}
	ix := Build(col, Options{Seed: 3})

	multi, _ := ix.MultiRangeIDs([][2]int64{{10, 20}, {50, 60}}, nil)
	inset, _ := ix.InSetIDs([]int64{5, 42, 77}, nil)
	var wantM, wantS int
	for _, v := range col {
		if (v >= 10 && v < 20) || (v >= 50 && v < 60) {
			wantM++
		}
		if v == 5 || v == 42 || v == 77 {
			wantS++
		}
	}
	if len(multi) != wantM {
		t.Errorf("MultiRangeIDs = %d, want %d", len(multi), wantM)
	}
	if len(inset) != wantS {
		t.Errorf("InSetIDs = %d, want %d", len(inset), wantS)
	}
}

func TestFacadeEstimateAndSaturation(t *testing.T) {
	col := mkCol(10000, 63)
	ix := Build(col, Options{Seed: 4})
	lo := col[0] - 1000
	hi := col[0] + 1000
	est := ix.EstimateSelectivity(lo, hi)
	if est < 0 || est > 1 {
		t.Errorf("EstimateSelectivity = %v", est)
	}
	if s := ix.Saturation(); s <= 0 || s >= 1 {
		t.Errorf("Saturation = %v", s)
	}
	if ix.NeedsRebuild(0.99, 0, 0.99) {
		t.Error("fresh index wants a rebuild")
	}
}
