package imprints

// StringIndex is a column imprint over a dictionary-encoded string
// attribute: the distinct strings are assigned lexicographically ordered
// int32 codes (see EncodeStrings), the imprint covers the code column,
// and string range predicates translate to code ranges. This is how the
// paper's "char" and "str" columns (Airtraffic, Cnet, TPC-H) are
// indexed.
//
// StringIndex wraps one standalone column. For string attributes inside
// a relation, use the table package instead: Table.AddStringColumn puts
// the same dictionary + code-imprint machinery behind the Query API,
// where StrRange/StrEquals/StrPrefix leaves compose with numeric
// predicates in one And/Or/AndNot tree.
type StringIndex struct {
	dict *StringDict
	ix   *Index[int32]
}

// BuildStringIndex dictionary-encodes vals and builds an imprint over
// the code column.
func BuildStringIndex(name string, vals []string, opts Options) *StringIndex {
	dict := EncodeStrings(name, vals)
	return &StringIndex{
		dict: dict,
		ix:   Build(dict.Codes().Values(), opts),
	}
}

// Dict exposes the string dictionary.
func (s *StringIndex) Dict() *StringDict { return s.dict }

// Index exposes the underlying code imprint.
func (s *StringIndex) Index() *Index[int32] { return s.ix }

// Len returns the number of rows covered.
func (s *StringIndex) Len() int { return s.ix.Len() }

// SizeBytes returns the footprint: code imprint plus dictionary.
func (s *StringIndex) SizeBytes() int64 {
	return s.ix.SizeBytes() + s.dict.SizeBytes() - s.dict.Codes().SizeBytes()
}

// RangeIDs returns ascending ids of rows whose string lies in the
// closed range [lo, hi] (string ranges are naturally inclusive: the
// dictionary maps them to a half-open code range).
func (s *StringIndex) RangeIDs(lo, hi string, res []uint32) ([]uint32, QueryStats) {
	loCode, hiCode, ok := s.dict.CodeRange(lo, hi)
	if !ok {
		return res, QueryStats{}
	}
	return s.ix.RangeIDs(loCode, hiCode, res)
}

// EqualIDs returns ascending ids of rows equal to v.
func (s *StringIndex) EqualIDs(v string, res []uint32) ([]uint32, QueryStats) {
	return s.RangeIDs(v, v, res)
}

// PrefixIDs returns ascending ids of rows whose string starts with
// prefix. Matching strings form a contiguous dictionary code range (see
// StringDict.PrefixCodeRange), answered in a single index pass.
func (s *StringIndex) PrefixIDs(prefix string, res []uint32) ([]uint32, QueryStats) {
	loCode, hiCode, ok := s.dict.PrefixCodeRange(prefix)
	if !ok {
		return res, QueryStats{}
	}
	return s.ix.RangeIDs(loCode, hiCode, res)
}

// Symbol decodes a row's string value.
func (s *StringIndex) Symbol(id uint32) string {
	return s.dict.Symbol(s.dict.Codes().Get(int(id)))
}
