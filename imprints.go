// Package imprints is a Go implementation of column imprints, the
// cache-conscious secondary index structure of Sidirourgos & Kersten,
// "Column Imprints: A Secondary Index Structure", SIGMOD 2013.
//
// A column imprint summarizes every 64-byte cacheline of a column with a
// small bit vector over an approximated equi-height histogram of at most
// 64 bins; identical consecutive vectors are run-length compressed
// through a cacheline dictionary. Range and point queries intersect a
// query bit mask with the imprint vectors to touch only the cachelines
// that can contain qualifying values, falling back to value checks only
// where a histogram bin straddles a query border.
//
// # Quick start
//
//	col := []int64{ ... }
//	ix := imprints.Build(col, imprints.Options{})
//	ids, stats := ix.RangeIDs(100, 500, nil) // ids with 100 <= v < 500
//
// # The front door: repro/table
//
// This package is the low-level facade over a single raw index. For
// anything relation-shaped, the front door is the repro/table package's
// lazy Query API, which composes numeric and string predicates under
// And/Or/AndNot trees, plans index-vs-scan per leaf, streams rows, and
// is safe for concurrent readers against batch writers:
//
//	q := t.Select("price", "city").Where(pred).Limit(10)
//	plan, _ := q.Explain() // the per-leaf access-path plan
//	for id, row := range q.Rows() { ... }
//
// Serving loops that re-run one predicate shape per request should
// compile it once with table.Prepare: leaves are translated a single
// time, named placeholders (table.Param / table.StrParam) are bound per
// execution, and executions are safe to run concurrently:
//
//	p, _ := t.Prepare(pred, table.SelectOptions{})
//	ids, _, _ := p.Bind("lo", int64(40)).Bind("hi", int64(90)).IDs()
//
// The free functions below remain stable thin wrappers over the
// internal packages, so existing raw-index callers keep working.
//
// The package also exposes the paper's comparator structures — zonemaps
// (BuildZonemap) and bit-binned WAH bitmaps (BuildWAH) — plus a
// sequential scan (ScanRange), so applications can benchmark all four on
// their own data, and the supporting machinery: column entropy
// (Index.Entropy), delta-update merging, parallel and two-level builds,
// and binary serialization.
//
// All types are generic over the fixed-width value types in Value;
// strings are supported through dictionary encoding (EncodeStrings).
package imprints

import (
	"io"

	"repro/internal/coltype"
	"repro/internal/column"
	"repro/internal/core"
	"repro/internal/histogram"
	"repro/internal/scan"
	"repro/internal/wah"
	"repro/internal/zonemap"
)

// Value enumerates the supported column element types: every fixed-width
// integer plus float32 and float64.
type Value = coltype.Value

// Options configures imprint construction. The zero value follows the
// paper: 2048-value sample, 64-byte cachelines, up to 64 bins.
type Options = core.Options

// Index is a column imprints secondary index. See core.Index for the
// full method set: RangeIDs, RangeIDsClosed, AtLeast, LessThan,
// PointIDs, CountRange, RangeCachelines, Append, MarkUpdated, Entropy,
// Fingerprint, SizeBytes, Write, ...
type Index[V Value] = core.Index[V]

// QueryStats instruments query evaluation: index probes, value
// comparisons and per-cacheline outcome counts.
type QueryStats = core.QueryStats

// CandidateRun is a run of candidate cachelines used by the
// late-materialization API (RangeCachelines, EvaluateAnd).
type CandidateRun = core.CandidateRun

// Conjunct is one range predicate of a multi-attribute conjunction.
type Conjunct = core.Conjunct

// TwoLevel is the optional second index level that summarizes blocks of
// cachelines (the paper's multi-level extension).
type TwoLevel[V Value] = core.TwoLevel[V]

// Histogram holds the sampled bin borders shared by imprints and the
// WAH comparator.
type Histogram[V Value] = histogram.Histogram[V]

// Delta is the query-time update structure of Section 4.2 (insert and
// delete tables merged into index results).
type Delta[V Value] = column.Delta[V]

// StringDict is a dictionary-encoded string column: build indexes over
// Codes() and translate string ranges with CodeRange.
type StringDict = column.StringDict

// ErrCorrupt is returned by ReadIndex for invalid serialized images.
var ErrCorrupt = core.ErrCorrupt

// Build constructs a column imprints index over col (Algorithm 1 of the
// paper). It panics on an empty column.
func Build[V Value](col []V, opts Options) *Index[V] {
	return core.Build(col, opts)
}

// BuildParallel constructs the same index as Build using the given
// number of worker goroutines; the result is bit-identical to the
// sequential build.
func BuildParallel[V Value](col []V, opts Options, workers int) *Index[V] {
	return core.BuildParallel(col, opts, workers)
}

// NewTwoLevel adds a second summary level over an existing index;
// blockSize is in cachelines (0 selects a default).
func NewTwoLevel[V Value](ix *Index[V], blockSize int) *TwoLevel[V] {
	return core.NewTwoLevel(ix, blockSize)
}

// ReadIndex deserializes an index written with Index.Write and
// reattaches it to col.
func ReadIndex[V Value](r io.Reader, col []V) (*Index[V], error) {
	return core.ReadIndex(r, col)
}

// NewRangeConjunct wraps a [low, high) predicate over an index for use
// with EvaluateAnd.
func NewRangeConjunct[V Value](ix *Index[V], low, high V) Conjunct {
	return core.NewRangeConjunct(ix, low, high)
}

// EvaluateAnd evaluates a conjunction of range predicates over columns
// of one relation with late materialization: candidate cacheline lists
// are merge-joined before any value is fetched (Section 3 of the paper).
func EvaluateAnd(res []uint32, conjs ...Conjunct) ([]uint32, QueryStats) {
	return core.EvaluateAnd(res, conjs...)
}

// EvaluateOr evaluates a disjunction of range predicates with late
// materialization (candidate lists unioned before fetching values).
func EvaluateOr(res []uint32, conjs ...Conjunct) ([]uint32, QueryStats) {
	return core.EvaluateOr(res, conjs...)
}

// EvaluateAndNot evaluates "p AND NOT q" with late materialization
// (Section 4.2's inter-column difference applied to candidate lists).
func EvaluateAndNot(res []uint32, p, q Conjunct) ([]uint32, QueryStats) {
	return core.EvaluateAndNot(res, p, q)
}

// IntersectRuns, UnionRuns and DiffRuns compose candidate cacheline
// lists for custom evaluation strategies.
func IntersectRuns(a, b []CandidateRun) []CandidateRun { return core.IntersectRuns(a, b) }

// UnionRuns merges candidate lists for disjunctions; see IntersectRuns.
func UnionRuns(a, b []CandidateRun) []CandidateRun { return core.UnionRuns(a, b) }

// DiffRuns subtracts candidate lists for negations; see IntersectRuns.
func DiffRuns(a, b []CandidateRun) []CandidateRun { return core.DiffRuns(a, b) }

// TotalRunCachelines sums the cachelines covered by a candidate list.
func TotalRunCachelines(runs []CandidateRun) uint64 { return core.TotalCachelines(runs) }

// NewDelta returns an empty update delta for use with
// Index.RangeIDsDelta.
func NewDelta[V Value]() *Delta[V] { return column.NewDelta[V]() }

// EncodeStrings dictionary-encodes a string attribute into an int32 code
// column (codes are ordered like the strings, so string ranges map to
// code ranges).
func EncodeStrings(name string, vals []string) *StringDict {
	return column.EncodeStrings(name, vals)
}

// Zonemap is the per-cacheline min/max comparator index (Section 2.1).
type Zonemap[V Value] = zonemap.Index[V]

// ZonemapStats instruments zonemap queries.
type ZonemapStats = zonemap.QueryStats

// BuildZonemap constructs a zonemap with cacheline-sized zones.
func BuildZonemap[V Value](col []V) *Zonemap[V] {
	return zonemap.Build(col, zonemap.Options{})
}

// WAHBitmap is the bit-binned, WAH-compressed bitmap comparator index.
type WAHBitmap[V Value] = wah.BitmapIndex[V]

// WAHStats instruments WAH bitmap queries.
type WAHStats = wah.QueryStats

// BuildWAH constructs a WAH bitmap index; opts.Seed controls the shared
// histogram sampling.
func BuildWAH[V Value](col []V, opts Options) *WAHBitmap[V] {
	return wah.Build(col, wah.Options{
		SampleSize:      opts.SampleSize,
		Seed:            opts.Seed,
		CountDuplicates: opts.CountDuplicates,
	})
}

// BuildWAHShared constructs a WAH bitmap over the same histogram as an
// imprints index, exactly as the paper's evaluation does.
func BuildWAHShared[V Value](col []V, ix *Index[V]) *WAHBitmap[V] {
	return wah.BuildWithHistogram(col, ix.Histogram())
}

// ScanStats reports the work of a sequential scan.
type ScanStats = scan.Stats

// ScanRange is the sequential-scan baseline: ids of values in
// [low, high).
func ScanRange[V Value](col []V, low, high V, res []uint32) ([]uint32, ScanStats) {
	return scan.RangeIDs(col, low, high, res)
}
